//! Shared parallel-dispatch helpers for the kernel layer.
//!
//! Every rowwise kernel uses the same pattern — run serial below a size
//! threshold, otherwise fan out over last-axis rows — so the threshold and
//! the dispatch live here once instead of being re-derived per module.

use rayon::prelude::*;

/// Elements below which rowwise kernels stay single-threaded: parallel
/// dispatch overhead beats the work saved.
pub(crate) const PAR_NUMEL: usize = 64 * 1024;

/// Multiply-adds below which FLOPs-gated kernels stay single-threaded.
/// This is THE dispatch gate for both the GEMM layer and the tiled
/// attention kernels (both import it from here), so the whole hot path
/// parallelizes on one policy.
pub(crate) const PAR_FLOPS: usize = 1 << 19;

/// Run `tasks` independent index-addressed closures, fanning out over the
/// pool when `par` says the total work is worth the dispatch. Used by the
/// tiled attention kernels, whose task grid is (batch × tile) rather than
/// output rows.
pub(crate) fn for_each_task_if(par: bool, tasks: usize, f: impl Fn(usize) + Sync) {
    if par && tasks > 1 && rayon::current_num_threads() > 1 {
        (0..tasks).into_par_iter().for_each(f);
    } else {
        for t in 0..tasks {
            f(t);
        }
    }
}

/// Prefix-summed flattened task grid over heterogeneous jobs: job `j`
/// contributes `counts[j]` tasks, and every task of every job lands in one
/// shared index space `0..total()`. Dispatching that flat range through
/// the pool (whose workers claim indices cooperatively from one queue, the
/// same atomic-claim scheme as the collectives chunk engine) is what lets
/// a ragged batch blend batch-level and intra-job parallelism: a worker
/// that finishes a small job's only tile immediately claims another job's
/// next tile instead of idling at a per-job barrier.
pub(crate) struct FlatGrid {
    /// `offsets[j]` = first flat index of job `j`; last entry = total.
    offsets: Vec<usize>,
}

impl FlatGrid {
    pub(crate) fn new(counts: impl IntoIterator<Item = usize>) -> Self {
        let mut offsets = vec![0usize];
        let mut acc = 0usize;
        for c in counts {
            acc += c;
            offsets.push(acc);
        }
        FlatGrid { offsets }
    }

    pub(crate) fn total(&self) -> usize {
        *self.offsets.last().unwrap()
    }

    /// Map a flat task index back to `(job, task_within_job)`.
    pub(crate) fn locate(&self, t: usize) -> (usize, usize) {
        debug_assert!(t < self.total());
        let j = self.offsets.partition_point(|&o| o <= t) - 1;
        (j, t - self.offsets[j])
    }
}

/// Apply `f` to every `n`-sized row of `out`, in parallel when large.
pub(crate) fn for_each_row(out: &mut [f32], n: usize, f: impl Fn(&mut [f32]) + Sync) {
    if out.len() >= PAR_NUMEL {
        out.par_chunks_mut(n).for_each(f);
    } else {
        out.chunks_mut(n).for_each(f);
    }
}

/// [`for_each_row`] with the row index.
pub(crate) fn for_each_row_indexed(
    out: &mut [f32],
    n: usize,
    f: impl Fn(usize, &mut [f32]) + Sync,
) {
    for_each_row_indexed_if(out.len() >= PAR_NUMEL, out, n, f);
}

/// [`for_each_row_indexed`] with an explicit parallelism gate, for kernels
/// whose per-row work is much larger than the swept buffer (e.g. a sweep
/// writing `[N, C]` that reads `[N, C, D]`).
pub(crate) fn for_each_row_indexed_if(
    par: bool,
    out: &mut [f32],
    n: usize,
    f: impl Fn(usize, &mut [f32]) + Sync,
) {
    if par {
        out.par_chunks_mut(n).enumerate().for_each(|(i, row)| f(i, row));
    } else {
        out.chunks_mut(n).enumerate().for_each(|(i, row)| f(i, row));
    }
}

/// Lock-step rowwise sweep over two buffers (row `i` of `a` with row `i`
/// of `b`), parallel when the first buffer is large.
pub(crate) fn for_each_row_zip(
    a: &mut [f32],
    na: usize,
    b: &mut [f32],
    nb: usize,
    f: impl Fn(usize, &mut [f32], &mut [f32]) + Sync,
) {
    debug_assert_eq!(a.len().div_ceil(na), b.len().div_ceil(nb));
    if a.len() >= PAR_NUMEL {
        a.par_chunks_mut(na)
            .zip(b.par_chunks_mut(nb))
            .enumerate()
            .for_each(|(i, (ar, br))| f(i, ar, br));
    } else {
        a.chunks_mut(na)
            .zip(b.chunks_mut(nb))
            .enumerate()
            .for_each(|(i, (ar, br))| f(i, ar, br));
    }
}

/// Chunked in-place sweep over a flat buffer, parallel when large: like
/// [`map_in_place`] but handing the closure whole chunks, so lane-level
/// kernels from [`crate::simd`] can run inside. Chunk boundaries never
/// change elementwise results, so output is identical at any thread count.
pub(crate) fn for_each_chunk(data: &mut [f32], f: impl Fn(&mut [f32]) + Sync) {
    if data.len() >= PAR_NUMEL {
        let chunk = data
            .len()
            .div_ceil(rayon::current_num_threads() * 4)
            .max(1024);
        data.par_chunks_mut(chunk).for_each(f);
    } else {
        f(data);
    }
}

/// Elementwise in-place map, parallel when large.
pub(crate) fn map_in_place(data: &mut [f32], f: impl Fn(f32) -> f32 + Sync) {
    if data.len() >= PAR_NUMEL {
        let chunk = data
            .len()
            .div_ceil(rayon::current_num_threads() * 4)
            .max(1024);
        data.par_chunks_mut(chunk).for_each(|c| {
            for x in c.iter_mut() {
                *x = f(*x);
            }
        });
    } else {
        for x in data.iter_mut() {
            *x = f(*x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rowwise_dispatch_covers_both_paths() {
        // small (serial) and large (parallel) must produce identical rows
        for rows in [4usize, 2048] {
            let n = 64;
            let mut out = vec![0.0f32; rows * n];
            for_each_row_indexed(&mut out, n, |i, row| {
                for (j, x) in row.iter_mut().enumerate() {
                    *x = (i * n + j) as f32;
                }
            });
            for (i, x) in out.iter().enumerate() {
                assert_eq!(*x, i as f32);
            }
        }
    }

    #[test]
    fn flat_grid_locates_every_task() {
        let g = FlatGrid::new([3usize, 1, 0, 4]);
        assert_eq!(g.total(), 8);
        let want = [
            (0, 0), (0, 1), (0, 2), // job 0
            (1, 0), // job 1 (job 2 contributes nothing)
            (3, 0), (3, 1), (3, 2), (3, 3), // job 3
        ];
        for (t, &w) in want.iter().enumerate() {
            assert_eq!(g.locate(t), w, "task {t}");
        }
        assert_eq!(FlatGrid::new(std::iter::empty()).total(), 0);
    }

    #[test]
    fn map_in_place_matches_serial() {
        let mut big: Vec<f32> = (0..PAR_NUMEL + 5).map(|i| i as f32).collect();
        map_in_place(&mut big, |x| 2.0 * x + 1.0);
        for (i, x) in big.iter().enumerate() {
            assert_eq!(*x, 2.0 * i as f32 + 1.0);
        }
    }
}
