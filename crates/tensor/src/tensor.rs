//! The contiguous, immutable, reference-counted tensor type.
//!
//! Buffers are shared via `Arc`, so `clone` is O(1) and reshapes are free.
//! All mutation happens through kernels that produce new tensors; this keeps
//! the autograd tape simple and makes cross-thread sharing (collectives)
//! trivially safe.
//!
//! # Storage dtypes
//!
//! A buffer is [`Storage`]-tagged: `F32` (the compute type) or `Bf16`
//! (half-width storage, see [`crate::dtype`]). The f32 fast paths are
//! untouched — [`Tensor::data`] still hands out `&[f32]` and panics on a
//! bf16 tensor, so nothing silently decodes in a hot loop. Code that wants
//! to *compute* with a bf16 tensor either goes through a dtype-aware kernel
//! (the GEMM packers convert-on-pack) or decodes explicitly with
//! [`Tensor::to_dtype`]. Element accessors ([`Tensor::at`], [`Tensor::item`],
//! [`Tensor::to_vec`]) decode transparently — they are cold-path helpers.

use std::fmt;
use std::sync::Arc;

use crate::device::{current_tracker, MemCounter};
use crate::dtype::{bf16_to_f32, DType};
use crate::rng::Rng;
use crate::shape::Shape;

/// Dtype-tagged backing store. Variants hold plain `Vec`s so the common
/// f32 case stays a direct slice borrow.
pub(crate) enum Storage {
    F32(Vec<f32>),
    Bf16(Vec<u16>),
}

/// Run `$body` with `$v` bound to whichever `Vec` the storage holds —
/// for code that only needs length/capacity-style facts and works for
/// any element type (modeled on the `block_dispatch!` enum pattern).
macro_rules! storage_dispatch {
    ($s:expr, $v:ident => $body:expr) => {
        match $s {
            Storage::F32($v) => $body,
            Storage::Bf16($v) => $body,
        }
    };
}

impl Storage {
    #[inline]
    pub(crate) fn len(&self) -> usize {
        storage_dispatch!(self, v => v.len())
    }

    #[inline]
    pub(crate) fn dtype(&self) -> DType {
        match self {
            Storage::F32(_) => DType::F32,
            Storage::Bf16(_) => DType::Bf16,
        }
    }

    #[inline]
    pub(crate) fn size_bytes(&self) -> usize {
        self.len() * self.dtype().size_bytes()
    }
}

/// Reference-counted buffer that charges the allocating thread's
/// [`MemCounter`] and releases it on drop.
pub(crate) struct Buf {
    pub(crate) storage: Storage,
    tracker: Option<Arc<MemCounter>>,
}

impl Buf {
    fn new(storage: Storage) -> Arc<Self> {
        let tracker = current_tracker();
        if let Some(t) = &tracker {
            t.add(storage.size_bytes());
        }
        Arc::new(Buf { storage, tracker })
    }
}

impl Drop for Buf {
    fn drop(&mut self) {
        if let Some(t) = &self.tracker {
            t.sub(self.storage.size_bytes());
        }
    }
}

/// N-dimensional row-major tensor (f32 or bf16 storage; f32 semantics).
#[derive(Clone)]
pub struct Tensor {
    buf: Arc<Buf>,
    shape: Shape,
}

impl Tensor {
    // ----- constructors ---------------------------------------------------

    /// Build from an owned buffer; `data.len()` must equal the shape's numel.
    pub fn from_vec(data: Vec<f32>, shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        assert_eq!(
            data.len(),
            shape.numel(),
            "buffer length {} does not match shape {}",
            data.len(),
            shape
        );
        Tensor {
            buf: Buf::new(Storage::F32(data)),
            shape,
        }
    }

    /// Build a bf16-stored tensor from raw bf16 bit patterns.
    pub fn from_bf16(data: Vec<u16>, shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        assert_eq!(
            data.len(),
            shape.numel(),
            "buffer length {} does not match shape {}",
            data.len(),
            shape
        );
        Tensor {
            buf: Buf::new(Storage::Bf16(data)),
            shape,
        }
    }

    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        Tensor::from_vec(vec![0.0; shape.numel()], shape)
    }

    pub fn ones(shape: impl Into<Shape>) -> Self {
        Tensor::full(shape, 1.0)
    }

    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        Tensor::from_vec(vec![value; shape.numel()], shape)
    }

    pub fn scalar(value: f32) -> Self {
        Tensor::from_vec(vec![value], Shape::new(&[]))
    }

    /// I.i.d. normal entries with the given std.
    pub fn randn(shape: impl Into<Shape>, std: f32, rng: &mut Rng) -> Self {
        let shape = shape.into();
        let mut data = vec![0.0; shape.numel()];
        rng.fill_normal(&mut data, std);
        Tensor::from_vec(data, shape)
    }

    /// Uniform entries in `[lo, hi)`.
    pub fn rand_uniform(shape: impl Into<Shape>, lo: f32, hi: f32, rng: &mut Rng) -> Self {
        let shape = shape.into();
        let data = (0..shape.numel()).map(|_| rng.uniform_in(lo, hi)).collect();
        Tensor::from_vec(data, shape)
    }

    /// `0, 1, 2, ...` as f32, useful in tests.
    pub fn arange(n: usize) -> Self {
        Tensor::from_vec((0..n).map(|i| i as f32).collect(), [n])
    }

    // ----- dtype ----------------------------------------------------------

    /// Storage element type of the backing buffer.
    #[inline]
    pub fn dtype(&self) -> DType {
        self.buf.storage.dtype()
    }

    /// Convert storage dtype (no-op clone if already there). `F32 → Bf16`
    /// rounds to nearest even via the SIMD convert sweep; `Bf16 → F32` is
    /// exact.
    pub fn to_dtype(&self, dtype: DType) -> Tensor {
        if self.dtype() == dtype {
            return self.clone();
        }
        match (&self.buf.storage, dtype) {
            (Storage::F32(v), DType::Bf16) => {
                let mut out = vec![0u16; v.len()];
                crate::simd::f32_to_bf16_sweep(v, &mut out);
                Tensor::from_bf16(out, self.shape.clone())
            }
            (Storage::Bf16(v), DType::F32) => {
                let mut out = vec![0.0f32; v.len()];
                crate::simd::bf16_to_f32_sweep(v, &mut out);
                Tensor::from_vec(out, self.shape.clone())
            }
            _ => unreachable!("same-dtype handled above"),
        }
    }

    /// Raw bf16 bit patterns of a bf16-stored tensor.
    ///
    /// Panics on f32 storage — mirrored by [`Tensor::data`] panicking on
    /// bf16, so every call site states which tier it reads.
    #[inline]
    pub fn bf16_data(&self) -> &[u16] {
        match &self.buf.storage {
            Storage::Bf16(v) => v,
            Storage::F32(_) => panic!("bf16_data() on f32-stored tensor"),
        }
    }

    // ----- accessors ------------------------------------------------------

    #[inline]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    #[inline]
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    #[inline]
    pub fn ndim(&self) -> usize {
        self.shape.ndim()
    }

    #[inline]
    pub fn numel(&self) -> usize {
        self.shape.numel()
    }

    /// Borrow the f32 buffer. Panics on bf16 storage: kernels that want
    /// bf16 operands must opt in (convert-on-pack or [`Tensor::to_dtype`])
    /// rather than decode silently.
    #[inline]
    pub fn data(&self) -> &[f32] {
        match &self.buf.storage {
            Storage::F32(v) => v,
            Storage::Bf16(_) => panic!(
                "data() on bf16-stored tensor; use to_dtype(DType::F32), bf16_data(), \
                 or a dtype-aware kernel"
            ),
        }
    }

    /// The single element of a scalar (or 1-element) tensor.
    pub fn item(&self) -> f32 {
        assert_eq!(self.numel(), 1, "item() on tensor of shape {}", self.shape);
        self.at(0)
    }

    /// Element at a flat row-major offset (decodes bf16 transparently).
    #[inline]
    pub fn at(&self, flat: usize) -> f32 {
        match &self.buf.storage {
            Storage::F32(v) => v[flat],
            Storage::Bf16(v) => bf16_to_f32(v[flat]),
        }
    }

    /// Whether two tensors share the same underlying buffer.
    pub fn ptr_eq(&self, other: &Tensor) -> bool {
        Arc::ptr_eq(&self.buf, &other.buf)
    }

    // ----- cheap shape manipulation ----------------------------------------

    /// Zero-copy reshape (element count must be preserved).
    pub fn reshape(&self, dims: &[usize]) -> Tensor {
        Tensor {
            buf: self.buf.clone(),
            shape: self.shape.reshaped(dims),
        }
    }

    /// View as `[rows, last]`.
    pub fn as_2d(&self) -> Tensor {
        self.reshape(&[self.shape.rows(), self.shape.last()])
    }

    /// Copy out an owned f32 Vec (for interop / assertions; decodes bf16).
    pub fn to_vec(&self) -> Vec<f32> {
        match &self.buf.storage {
            Storage::F32(v) => v.clone(),
            Storage::Bf16(v) => v.iter().map(|&b| bf16_to_f32(b)).collect(),
        }
    }

    /// Take the underlying buffer for in-place mutation.
    ///
    /// When this tensor is the f32 buffer's sole owner the Vec is moved out
    /// without copying — the escape hatch the fused in-place kernels
    /// (optimizer updates, gradient clipping) use to avoid allocating a
    /// fresh buffer per op. Shared buffers fall back to a copy, and bf16
    /// storage decodes to a fresh f32 Vec, so this is always safe to call.
    pub fn into_data(self) -> Vec<f32> {
        match Arc::try_unwrap(self.buf) {
            Ok(mut buf) => match &mut buf.storage {
                Storage::F32(data) => {
                    // The memory charge is released here; re-wrapping the Vec
                    // via `from_vec` charges it again, keeping accounting exact.
                    if let Some(t) = &buf.tracker {
                        t.sub(data.len() * std::mem::size_of::<f32>());
                        buf.tracker = None;
                    }
                    std::mem::take(data)
                }
                Storage::Bf16(data) => data.iter().map(|&b| bf16_to_f32(b)).collect(),
            },
            Err(shared) => match &shared.storage {
                Storage::F32(v) => v.clone(),
                Storage::Bf16(v) => v.iter().map(|&b| bf16_to_f32(b)).collect(),
            },
        }
    }

    // ----- simple numeric helpers (non-autograd) ----------------------------

    pub fn map(&self, f: impl Fn(f32) -> f32 + Sync) -> Tensor {
        let mut data: Vec<f32> = self.to_vec();
        crate::par::map_in_place(&mut data, f);
        Tensor::from_vec(data, self.shape.clone())
    }

    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.dims(), other.dims(), "zip shape mismatch");
        let data = (0..self.numel())
            .map(|i| f(self.at(i), other.at(i)))
            .collect();
        Tensor::from_vec(data, self.shape.clone())
    }

    pub fn sum(&self) -> f32 {
        // Pairwise-ish: chunked accumulation keeps error growth modest.
        self.data()
            .chunks(4096)
            .map(|c| c.iter().sum::<f32>() as f64)
            .sum::<f64>() as f32
    }

    pub fn mean(&self) -> f32 {
        self.sum() / self.numel() as f32
    }

    pub fn max_abs(&self) -> f32 {
        self.data().iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// Max |a - b| between two same-shaped tensors (decodes bf16).
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(self.dims(), other.dims());
        (0..self.numel()).fold(0.0f32, |m, i| m.max((self.at(i) - other.at(i)).abs()))
    }

    /// Relative L2 distance `|a-b| / (|a| + eps)` — the standard check for
    /// "same computation up to fp reassociation".
    pub fn rel_l2_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(self.dims(), other.dims());
        let (mut num, mut den) = (0f64, 0f64);
        for i in 0..self.numel() {
            let (a, b) = (self.at(i), other.at(i));
            num += ((a - b) as f64).powi(2);
            den += (a as f64).powi(2);
        }
        (num.sqrt() / (den.sqrt() + 1e-12)) as f32
    }

    /// True if every element is finite.
    pub fn all_finite(&self) -> bool {
        (0..self.numel()).all(|i| self.at(i).is_finite())
    }

    /// Bytes resident in the backing buffer (dtype-aware: a bf16 tensor
    /// reports half the f32 footprint — this is what [`MemCounter`]
    /// charges and what the collectives layer logs as payload size).
    pub fn size_bytes(&self) -> usize {
        self.numel() * self.dtype().size_bytes()
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{}[{}] ", self.shape, self.dtype().name())?;
        let n = self.numel().min(8);
        let head: Vec<f32> = (0..n).map(|i| self.at(i)).collect();
        write!(f, "{head:?}")?;
        if self.numel() > 8 {
            write!(f, "…")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtype::bf16_round_trip;

    #[test]
    fn from_vec_checks_len() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
        assert_eq!(t.dims(), &[2, 2]);
        assert_eq!(t.at(3), 4.0);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_rejects_bad_len() {
        Tensor::from_vec(vec![1.0; 5], [2, 2]);
    }

    #[test]
    fn reshape_is_zero_copy() {
        let t = Tensor::arange(6);
        let r = t.reshape(&[2, 3]);
        assert!(t.ptr_eq(&r));
        assert_eq!(r.dims(), &[2, 3]);
    }

    #[test]
    fn scalar_item() {
        assert_eq!(Tensor::scalar(3.5).item(), 3.5);
    }

    #[test]
    fn sum_and_mean() {
        let t = Tensor::arange(5);
        assert_eq!(t.sum(), 10.0);
        assert_eq!(t.mean(), 2.0);
    }

    #[test]
    fn rel_l2_zero_for_identical() {
        let mut rng = Rng::new(1);
        let t = Tensor::randn([16, 16], 1.0, &mut rng);
        assert_eq!(t.rel_l2_diff(&t.clone()), 0.0);
    }

    #[test]
    fn randn_reproducible() {
        let a = Tensor::randn([32], 1.0, &mut Rng::new(9));
        let b = Tensor::randn([32], 1.0, &mut Rng::new(9));
        assert_eq!(a.to_vec(), b.to_vec());
    }

    #[test]
    fn bf16_tensor_round_trips_and_halves_bytes() {
        let mut rng = Rng::new(5);
        let t = Tensor::randn([33, 7], 1.0, &mut rng);
        let b = t.to_dtype(DType::Bf16);
        assert_eq!(b.dtype(), DType::Bf16);
        assert_eq!(b.size_bytes(), t.size_bytes() / 2);
        let back = b.to_dtype(DType::F32);
        assert_eq!(back.dtype(), DType::F32);
        for i in 0..t.numel() {
            assert_eq!(back.at(i), bf16_round_trip(t.at(i)), "elem {i}");
            assert_eq!(b.at(i), back.at(i), "decoding accessor {i}");
        }
        // Values already representable survive exactly.
        let exact = Tensor::arange(100);
        assert_eq!(exact.to_dtype(DType::Bf16).to_vec(), exact.to_vec());
    }

    #[test]
    #[should_panic(expected = "data() on bf16-stored tensor")]
    fn f32_slice_of_bf16_tensor_panics() {
        let t = Tensor::arange(4).to_dtype(DType::Bf16);
        let _ = t.data();
    }

    #[test]
    fn bf16_tensor_charges_half_width_memory() {
        let counter = MemCounter::new();
        crate::device::with_tracker(counter.clone(), || {
            let t = Tensor::zeros([256]);
            assert_eq!(counter.current(), 1024);
            let b = t.to_dtype(DType::Bf16);
            assert_eq!(counter.current(), 1024 + 512);
            drop(t);
            assert_eq!(counter.current(), 512);
            drop(b);
            assert_eq!(counter.current(), 0);
        });
    }
}
