//! The contiguous, immutable, reference-counted tensor type.
//!
//! Buffers are shared via `Arc`, so `clone` is O(1) and reshapes are free.
//! All mutation happens through kernels that produce new tensors; this keeps
//! the autograd tape simple and makes cross-thread sharing (collectives)
//! trivially safe.

use std::fmt;
use std::sync::Arc;

use crate::device::{current_tracker, MemCounter};
use crate::rng::Rng;
use crate::shape::Shape;

/// Reference-counted buffer that charges the allocating thread's
/// [`MemCounter`] and releases it on drop.
pub(crate) struct Buf {
    pub(crate) data: Vec<f32>,
    tracker: Option<Arc<MemCounter>>,
}

impl Buf {
    fn new(data: Vec<f32>) -> Arc<Self> {
        let tracker = current_tracker();
        if let Some(t) = &tracker {
            t.add(data.len() * std::mem::size_of::<f32>());
        }
        Arc::new(Buf { data, tracker })
    }
}

impl Drop for Buf {
    fn drop(&mut self) {
        if let Some(t) = &self.tracker {
            t.sub(self.data.len() * std::mem::size_of::<f32>());
        }
    }
}

/// N-dimensional row-major f32 tensor.
#[derive(Clone)]
pub struct Tensor {
    buf: Arc<Buf>,
    shape: Shape,
}

impl Tensor {
    // ----- constructors ---------------------------------------------------

    /// Build from an owned buffer; `data.len()` must equal the shape's numel.
    pub fn from_vec(data: Vec<f32>, shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        assert_eq!(
            data.len(),
            shape.numel(),
            "buffer length {} does not match shape {}",
            data.len(),
            shape
        );
        Tensor {
            buf: Buf::new(data),
            shape,
        }
    }

    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        Tensor::from_vec(vec![0.0; shape.numel()], shape)
    }

    pub fn ones(shape: impl Into<Shape>) -> Self {
        Tensor::full(shape, 1.0)
    }

    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        Tensor::from_vec(vec![value; shape.numel()], shape)
    }

    pub fn scalar(value: f32) -> Self {
        Tensor::from_vec(vec![value], Shape::new(&[]))
    }

    /// I.i.d. normal entries with the given std.
    pub fn randn(shape: impl Into<Shape>, std: f32, rng: &mut Rng) -> Self {
        let shape = shape.into();
        let mut data = vec![0.0; shape.numel()];
        rng.fill_normal(&mut data, std);
        Tensor::from_vec(data, shape)
    }

    /// Uniform entries in `[lo, hi)`.
    pub fn rand_uniform(shape: impl Into<Shape>, lo: f32, hi: f32, rng: &mut Rng) -> Self {
        let shape = shape.into();
        let data = (0..shape.numel()).map(|_| rng.uniform_in(lo, hi)).collect();
        Tensor::from_vec(data, shape)
    }

    /// `0, 1, 2, ...` as f32, useful in tests.
    pub fn arange(n: usize) -> Self {
        Tensor::from_vec((0..n).map(|i| i as f32).collect(), [n])
    }

    // ----- accessors ------------------------------------------------------

    #[inline]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    #[inline]
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    #[inline]
    pub fn ndim(&self) -> usize {
        self.shape.ndim()
    }

    #[inline]
    pub fn numel(&self) -> usize {
        self.shape.numel()
    }

    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.buf.data
    }

    /// The single element of a scalar (or 1-element) tensor.
    pub fn item(&self) -> f32 {
        assert_eq!(self.numel(), 1, "item() on tensor of shape {}", self.shape);
        self.buf.data[0]
    }

    /// Element at a flat row-major offset.
    #[inline]
    pub fn at(&self, flat: usize) -> f32 {
        self.buf.data[flat]
    }

    /// Whether two tensors share the same underlying buffer.
    pub fn ptr_eq(&self, other: &Tensor) -> bool {
        Arc::ptr_eq(&self.buf, &other.buf)
    }

    // ----- cheap shape manipulation ----------------------------------------

    /// Zero-copy reshape (element count must be preserved).
    pub fn reshape(&self, dims: &[usize]) -> Tensor {
        Tensor {
            buf: self.buf.clone(),
            shape: self.shape.reshaped(dims),
        }
    }

    /// View as `[rows, last]`.
    pub fn as_2d(&self) -> Tensor {
        self.reshape(&[self.shape.rows(), self.shape.last()])
    }

    /// Copy out an owned Vec (for interop / assertions).
    pub fn to_vec(&self) -> Vec<f32> {
        self.buf.data.clone()
    }

    /// Take the underlying buffer for in-place mutation.
    ///
    /// When this tensor is the buffer's sole owner the Vec is moved out
    /// without copying — the escape hatch the fused in-place kernels
    /// (optimizer updates, gradient clipping) use to avoid allocating a
    /// fresh buffer per op. Shared buffers fall back to a copy, so this is
    /// always safe to call.
    pub fn into_data(self) -> Vec<f32> {
        match Arc::try_unwrap(self.buf) {
            Ok(mut buf) => {
                // The memory charge is released here; re-wrapping the Vec
                // via `from_vec` charges it again, keeping accounting exact.
                if let Some(t) = &buf.tracker {
                    t.sub(buf.data.len() * std::mem::size_of::<f32>());
                    buf.tracker = None;
                }
                std::mem::take(&mut buf.data)
            }
            Err(shared) => shared.data.clone(),
        }
    }

    // ----- simple numeric helpers (non-autograd) ----------------------------

    pub fn map(&self, f: impl Fn(f32) -> f32 + Sync) -> Tensor {
        let mut data: Vec<f32> = self.buf.data.clone();
        crate::par::map_in_place(&mut data, f);
        Tensor::from_vec(data, self.shape.clone())
    }

    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.dims(), other.dims(), "zip shape mismatch");
        let data = self
            .buf
            .data
            .iter()
            .zip(other.buf.data.iter())
            .map(|(&a, &b)| f(a, b))
            .collect();
        Tensor::from_vec(data, self.shape.clone())
    }

    pub fn sum(&self) -> f32 {
        // Pairwise-ish: chunked accumulation keeps error growth modest.
        self.buf
            .data
            .chunks(4096)
            .map(|c| c.iter().sum::<f32>() as f64)
            .sum::<f64>() as f32
    }

    pub fn mean(&self) -> f32 {
        self.sum() / self.numel() as f32
    }

    pub fn max_abs(&self) -> f32 {
        self.buf.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// Max |a - b| between two same-shaped tensors.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(self.dims(), other.dims());
        self.buf
            .data
            .iter()
            .zip(other.buf.data.iter())
            .fold(0.0f32, |m, (&a, &b)| m.max((a - b).abs()))
    }

    /// Relative L2 distance `|a-b| / (|a| + eps)` — the standard check for
    /// "same computation up to fp reassociation".
    pub fn rel_l2_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(self.dims(), other.dims());
        let (mut num, mut den) = (0f64, 0f64);
        for (&a, &b) in self.buf.data.iter().zip(other.buf.data.iter()) {
            num += ((a - b) as f64).powi(2);
            den += (a as f64).powi(2);
        }
        (num.sqrt() / (den.sqrt() + 1e-12)) as f32
    }

    /// True if every element is finite.
    pub fn all_finite(&self) -> bool {
        self.buf.data.iter().all(|x| x.is_finite())
    }

    pub fn size_bytes(&self) -> usize {
        self.numel() * std::mem::size_of::<f32>()
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} ", self.shape)?;
        let n = self.numel().min(8);
        write!(f, "{:?}", &self.buf.data[..n])?;
        if self.numel() > 8 {
            write!(f, "…")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_checks_len() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
        assert_eq!(t.dims(), &[2, 2]);
        assert_eq!(t.at(3), 4.0);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_rejects_bad_len() {
        Tensor::from_vec(vec![1.0; 5], [2, 2]);
    }

    #[test]
    fn reshape_is_zero_copy() {
        let t = Tensor::arange(6);
        let r = t.reshape(&[2, 3]);
        assert!(t.ptr_eq(&r));
        assert_eq!(r.dims(), &[2, 3]);
    }

    #[test]
    fn scalar_item() {
        assert_eq!(Tensor::scalar(3.5).item(), 3.5);
    }

    #[test]
    fn sum_and_mean() {
        let t = Tensor::arange(5);
        assert_eq!(t.sum(), 10.0);
        assert_eq!(t.mean(), 2.0);
    }

    #[test]
    fn rel_l2_zero_for_identical() {
        let mut rng = Rng::new(1);
        let t = Tensor::randn([16, 16], 1.0, &mut rng);
        assert_eq!(t.rel_l2_diff(&t.clone()), 0.0);
    }

    #[test]
    fn randn_reproducible() {
        let a = Tensor::randn([32], 1.0, &mut Rng::new(9));
        let b = Tensor::randn([32], 1.0, &mut Rng::new(9));
        assert_eq!(a.to_vec(), b.to_vec());
    }
}
