//! # dchag-tensor
//!
//! CPU tensor library underpinning the D-CHAG reproduction: contiguous
//! row-major f32 tensors, rayon-parallel kernels, tape-based reverse-mode
//! autograd, parameter storage with pluggable binding (the hook used by the
//! distributed layers), and byte-accurate per-device memory accounting.
//!
//! The design goal is not to compete with BLAS but to be a *deterministic,
//! observable* stand-in for a GPU tensor runtime: every allocation is
//! charged to the simulated device of the allocating thread, every op is
//! reproducible from a seed, and the autograd tape is simple enough that
//! distributed collectives can register hand-written adjoints.

pub mod autograd;
pub mod checkpoint;
pub mod device;
pub mod dtype;
pub mod init;
pub mod ops;
pub(crate) mod par;
pub mod param;
pub mod rng;
pub mod scratch;
pub mod shape;
pub mod simd;
pub mod tensor;

pub use autograd::{Grads, Tape, Var};
pub use device::MemCounter;
pub use dtype::DType;
pub use param::{Binder, LocalBinder, ParamId, ParamStore};
pub use checkpoint::{
    CheckpointDir, CheckpointError, DiskFault, DiskFaultPlan, OptimEntry, OptimState, ShardMeta,
    SnapEntry, Snapshot, SnapshotWriter,
};
pub use rng::{Rng, RngState};
pub use shape::Shape;
pub use tensor::Tensor;

/// Convenience prelude for downstream crates.
pub mod prelude {
    pub use crate::autograd::{Grads, Tape, Var};
    pub use crate::checkpoint::{CheckpointDir, CheckpointError, DiskFaultPlan, Snapshot};
    pub use crate::dtype::DType;
    pub use crate::param::{Binder, LocalBinder, ParamId, ParamStore};
    pub use crate::rng::Rng;
    pub use crate::shape::Shape;
    pub use crate::tensor::Tensor;
}
