//! Explicit-SIMD compute core: runtime-dispatched vector kernels.
//!
//! One module owns every piece of lane-level code in the tensor crate. The
//! GEMM micro-kernel (full tiles plus the trimmed masked-tail edge
//! kernels), its store epilogues, the transpose-gather panel pack, and the
//! hot elementwise sweeps (`exp`, `tanh`/GELU, softmax max/sum,
//! layernorm's chunked Welford pass, the in-place AdamW update) are
//! written once over a small [`Vf32`] vector abstraction
//! (load/store/masked load/store/fma/min/max/blend/sqrt + horizontal
//! folds) and instantiated per ISA:
//!
//! * **AVX-512** — [`F32x16`] (`__m512`); the GEMM micro-kernel holds an
//!   8×32 accumulator (16 ZMM registers + 2 B vectors + 1 broadcast = 19 of
//!   32 architectural registers).
//! * **AVX2 + FMA** — [`F32x8`] (`__m256`); 6×16 accumulator (12 YMM plus
//!   2 B vectors and 1 broadcast = 15 of 16 registers — the same register
//!   arithmetic the old auto-vectorized kernel encoded implicitly).
//! * **Scalar** — safe Rust over fixed-size `[f32; 8]` windows, exactly the
//!   pre-SIMD kernels. This is both the portability fallback and the
//!   reference the SIMD paths are ulp-tested against.
//!
//! # Dispatch strategy
//!
//! The ISA is selected **once per process** via
//! [`is_x86_feature_detected!`] and cached ([`active_isa`]); every kernel
//! entry point reads the cached value and branches to its per-ISA
//! `#[target_feature]` wrapper. The `DCHAG_FORCE_ISA` environment variable
//! (`avx512` / `avx2` / `scalar`) overrides detection for testing — forcing
//! an ISA the host cannot run is a hard error, never silent misexecution.
//! Tests that need to cover several ISAs in one process use the `*_isa`
//! variants, which take the ISA explicitly; [`Isa::available`] enumerates
//! what the host supports.
//!
//! # Determinism and ulp policy
//!
//! Within one ISA, every kernel is bitwise deterministic at any thread
//! count: lane groupings are fixed by the ISA's vector width and the
//! parallel drivers above this module never change reduction grouping with
//! the worker count. Across ISAs:
//!
//! * **Elementwise** sweeps (`exp`, `tanh`, GELU, AdamW) perform the same
//!   IEEE operation sequence per element in every ISA, so they agree with
//!   the scalar path to ≤ 2 ulps (and are bitwise identical in practice).
//! * **Reductions** (row sums, Welford moments) fold lanes in a fixed tree
//!   order that differs from the scalar left-to-right order, so results
//!   agree within a few ulps but not bitwise. The GEMM micro-kernel
//!   accumulates strictly k-major per output element in every ISA, so its
//!   per-element rounding matches the scalar kernel's.

use std::sync::OnceLock;

// ---------------------------------------------------------------------------
// ISA selection
// ---------------------------------------------------------------------------

/// Instruction-set tier the lane-level kernels run on.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Isa {
    /// AVX-512F: 16-lane vectors, 8×32 GEMM accumulator.
    Avx512,
    /// AVX2 + FMA: 8-lane vectors, 6×16 GEMM accumulator.
    Avx2,
    /// Safe auto-vectorized Rust: the portability fallback and ulp
    /// reference.
    Scalar,
}

impl Isa {
    /// Short name recorded by the bench emitters.
    pub fn name(self) -> &'static str {
        match self {
            Isa::Avx512 => "avx512f",
            Isa::Avx2 => "avx2+fma",
            Isa::Scalar => "scalar",
        }
    }

    /// Every ISA this host can execute, widest first (always ends with
    /// [`Isa::Scalar`]). Tests iterate this to cover all paths in-process.
    pub fn available() -> Vec<Isa> {
        let mut out = Vec::new();
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx512f") {
                out.push(Isa::Avx512);
            }
            if std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
            {
                out.push(Isa::Avx2);
            }
        }
        out.push(Isa::Scalar);
        out
    }

    /// Whether this host can execute the ISA. Cheap (the feature macros
    /// cache in atomics), so the dispatchers check it unconditionally —
    /// `Isa` variants are freely constructible by safe code, and jumping
    /// into a `#[target_feature]` kernel the CPU lacks would be UB.
    fn supported(self) -> bool {
        match self {
            Isa::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            Isa::Avx2 => {
                std::arch::is_x86_feature_detected!("avx2")
                    && std::arch::is_x86_feature_detected!("fma")
            }
            #[cfg(target_arch = "x86_64")]
            Isa::Avx512 => std::arch::is_x86_feature_detected!("avx512f"),
            #[cfg(not(target_arch = "x86_64"))]
            _ => false,
        }
    }
}

fn detect() -> Isa {
    if let Ok(v) = std::env::var("DCHAG_FORCE_ISA") {
        let forced = match v.trim() {
            "" | "auto" | "native" => None,
            "scalar" => Some(Isa::Scalar),
            "avx2" => Some(Isa::Avx2),
            "avx512" | "avx512f" => Some(Isa::Avx512),
            other => {
                panic!("DCHAG_FORCE_ISA={other:?} not recognized (use avx512 | avx2 | scalar)")
            }
        };
        if let Some(isa) = forced {
            assert!(
                isa.supported(),
                "DCHAG_FORCE_ISA={} but this host does not support it",
                isa.name()
            );
            return isa;
        }
    }
    *Isa::available().first().unwrap()
}

/// The process-wide ISA every dispatched kernel runs on, selected once
/// (detection + `DCHAG_FORCE_ISA` override) and cached.
pub fn active_isa() -> Isa {
    static ISA: OnceLock<Isa> = OnceLock::new();
    *ISA.get_or_init(detect)
}

// ---------------------------------------------------------------------------
// GEMM tile geometry
// ---------------------------------------------------------------------------

/// Upper bound on micro-tile rows across ISAs (scratch sizing).
pub(crate) const GEMM_MAX_MR: usize = 8;
/// Upper bound on micro-tile columns across ISAs (scratch sizing).
pub(crate) const GEMM_MAX_NR: usize = 32;

/// `(MR, NR)` register micro-tile shape for an ISA. The accumulator is
/// always two vector registers wide (`NR = 2 × lanes`), so each A-element
/// broadcast feeds two FMAs and the kernel is FMA-port-bound rather than
/// load-port-bound. Public so the bench emitter can record the shape the
/// numbers ran on.
pub fn gemm_tile_shape(isa: Isa) -> (usize, usize) {
    match isa {
        // 16 ZMM accumulators + 2 B + 1 broadcast = 19 of 32 registers.
        Isa::Avx512 => (8, 32),
        // 12 YMM accumulators + 2 B + 1 broadcast = 15 of 16 registers.
        Isa::Avx2 | Isa::Scalar => (6, 16),
    }
}

/// What the micro-kernel store does with this tile's result. The bias
/// slice is already offset to the tile's first column (length ≥ `nr`).
#[derive(Clone, Copy)]
pub(crate) enum MicroEpi<'a> {
    /// `C += P`.
    Add,
    /// `C += P + bias` (bias added exactly once, on the first depth block).
    AddBias(&'a [f32]),
    /// `C = P` (scratch reuse without a `fill(0.0)` pre-pass).
    Assign,
}

// ---------------------------------------------------------------------------
// Scalar kernels (the Scalar ISA path and the ulp reference)
// ---------------------------------------------------------------------------

/// Vectorizable exp: Cephes-style polynomial (the coefficient set classic
/// `expf` implementations ship), accurate to ~1 ulp over the clamped
/// domain.
///
/// libm `expf` is an opaque call that serializes every lane of a softmax or
/// flash-attention sweep. This version reduces `x = n·ln2 + r` with the
/// round-to-nearest magic-number trick (no `round` libm call), evaluates a
/// degree-5 polynomial for `e^r` (Horner, FMA-contracted), and rebuilds
/// `2^n` by exponent-field bit assembly. The SIMD sweeps perform the
/// identical operation sequence per lane.
///
/// Domain: inputs are clamped to `[-87, 88]` (beyond which f32 `exp`
/// under/overflows anyway); softmax feeds only `x − max ≤ 0`. NaN
/// propagates.
#[inline(always)]
#[allow(clippy::excessive_precision)] // Cephes constants kept verbatim: LN2_HI must be the exactly-representable 0x3F318000
pub fn exp_fast(x: f32) -> f32 {
    let x = x.clamp(EXP_LO, EXP_HI);
    let n = (x * LOG2E + MAGIC) - MAGIC;
    let r = n.mul_add(-LN2_HI, x);
    let r = n.mul_add(-LN2_LO, r);
    let p = r.mul_add(EXP_P0, EXP_P1);
    let p = r.mul_add(p, EXP_P2);
    let p = r.mul_add(p, EXP_P3);
    let p = r.mul_add(p, EXP_P4);
    let p = r.mul_add(p, EXP_P5);
    let er = (p * r).mul_add(r, r) + 1.0;
    // 2^n by exponent assembly; n ∈ [-126, 127] after the clamp, so the
    // biased exponent stays in the normal range. (NaN takes `n as i32` = 0,
    // scale 1, and propagates through `er`.)
    let scale = f32::from_bits((((n as i32) + 127) as u32) << 23);
    er * scale
}

const LOG2E: f32 = std::f32::consts::LOG2_E;
// ln2 split hi/lo so `x − n·ln2` stays exact to f32 precision.
#[allow(clippy::excessive_precision)]
const LN2_HI: f32 = 0.693_359_375;
const LN2_LO: f32 = -2.121_944_4e-4;
// Round-to-nearest-even via the 1.5·2^23 magic constant: adding forces the
// integer into the mantissa, subtracting recovers it as a float.
const MAGIC: f32 = 12_582_912.0;
const EXP_LO: f32 = -87.0;
const EXP_HI: f32 = 88.0;
const EXP_P0: f32 = 1.987_569_2e-4;
const EXP_P1: f32 = 1.398_2e-3;
const EXP_P2: f32 = 8.333_452e-3;
const EXP_P3: f32 = 4.166_579_6e-2;
const EXP_P4: f32 = 1.666_666_6e-1;
#[allow(clippy::excessive_precision)] // Cephes constant kept verbatim
const EXP_P5: f32 = 5.000_000_1e-1;

/// Vectorizable tanh: Cephes-style rational approximation (the coefficient
/// set Eigen ships), accurate to a few f32 ulps over the clamped domain.
///
/// `f32::tanh` is an opaque libm call, so a GELU loop built on it can never
/// vectorize — the call serializes every lane. The
/// odd-polynomial-over-even-polynomial form (Horner, FMA-contracted) is
/// straight-line arithmetic the SIMD sweeps replicate lane-for-lane.
#[inline(always)]
pub fn tanh_fast(x: f32) -> f32 {
    // tanh saturates to ±1 in f32 past ~7.9; clamping there also bounds the
    // polynomial's valid domain. NaN propagates through clamp → p/q.
    let x = x.clamp(-TANH_BOUND, TANH_BOUND);
    let x2 = x * x;
    let p = x2.mul_add(TANH_A13, TANH_A11);
    let p = x2.mul_add(p, TANH_A9);
    let p = x2.mul_add(p, TANH_A7);
    let p = x2.mul_add(p, TANH_A5);
    let p = x2.mul_add(p, TANH_A3);
    let p = x * x2.mul_add(p, TANH_A1);
    let q = x2.mul_add(TANH_B6, TANH_B4);
    let q = x2.mul_add(q, TANH_B2);
    let q = x2.mul_add(q, TANH_B0);
    p / q
}

const TANH_BOUND: f32 = 7.905;
const TANH_A1: f32 = 4.893_525_5e-3;
const TANH_A3: f32 = 6.372_619_3e-4;
const TANH_A5: f32 = 1.485_722_4e-5;
const TANH_A7: f32 = 5.122_297_1e-8;
const TANH_A9: f32 = -8.604_672e-11;
const TANH_A11: f32 = 2.000_188e-13;
const TANH_A13: f32 = -2.760_768_5e-16;
const TANH_B0: f32 = 4.893_525e-3;
const TANH_B2: f32 = 2.268_434_6e-3;
const TANH_B4: f32 = 1.185_347_1e-4;
const TANH_B6: f32 = 1.198_258_4e-6;

pub(crate) const SQRT_2_OVER_PI: f32 = 0.797_884_6;
pub(crate) const GELU_C: f32 = 0.044_715;

/// GELU, tanh approximation (matches PyTorch `approximate="tanh"`).
#[inline(always)]
pub fn gelu_scalar(x: f32) -> f32 {
    0.5 * x * (1.0 + tanh_fast(SQRT_2_OVER_PI * (x + GELU_C * x * x * x)))
}

/// Welford chunk width: statistics are combined once per this many
/// elements, so the hot loop is a straight sum/sum-of-squares.
pub(crate) const WELFORD_CHUNK: usize = 64;

mod scalar {
    use super::*;

    #[inline]
    pub fn row_max(row: &[f32]) -> f32 {
        row.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x))
    }

    #[inline]
    pub fn row_sum(row: &[f32]) -> f32 {
        row.iter().sum()
    }

    #[inline]
    pub fn exp_sub_sweep(row: &mut [f32], m: f32) {
        for x in row.iter_mut() {
            *x = exp_fast(*x - m);
        }
    }

    #[inline]
    pub fn gelu_into(src: &[f32], dst: &mut [f32]) {
        for (d, &s) in dst.iter_mut().zip(src) {
            *d = gelu_scalar(s);
        }
    }

    #[inline]
    pub fn gelu_sweep(row: &mut [f32]) {
        for x in row.iter_mut() {
            *x = gelu_scalar(*x);
        }
    }

    /// Single-sweep `(mean, variance)` of one row via chunked Welford:
    /// each chunk accumulates a plain (vectorizable) shifted sum and
    /// sum-of-squares, folded into the running `(mean, M2)` pair with
    /// Chan's parallel-combine update.
    pub fn welford_stats(row: &[f32]) -> (f32, f32) {
        let n = row.len();
        let mut mean = 0.0f32;
        let mut m2 = 0.0f32;
        let mut count = 0usize;
        for chunk in row.chunks(WELFORD_CHUNK) {
            // Shift by the chunk's first element so the sums are over
            // values of magnitude ≈ the data's spread, not its offset —
            // this keeps the straight sums as well-conditioned as
            // per-element Welford.
            let shift = chunk[0];
            let (mut s, mut s2) = (0.0f32, 0.0f32);
            for &x in chunk {
                let v = x - shift;
                s += v;
                s2 = v.mul_add(v, s2);
            }
            let (mean2, m22) = combine_chunk(mean, m2, count, shift, s, s2, chunk.len());
            mean = mean2;
            m2 = m22;
            count += chunk.len();
        }
        (mean, m2 / n as f32)
    }

    pub fn adamw(p: &mut [f32], m: &mut [f32], v: &mut [f32], g: &[f32], h: &AdamParams) {
        for (((x, mm), vv), &gg) in p.iter_mut().zip(m.iter_mut()).zip(v.iter_mut()).zip(g) {
            adamw_scalar_step(x, mm, vv, gg, h);
        }
    }

    /// The safe auto-vectorized micro-kernel (the pre-SIMD kernel, kept
    /// verbatim): `[f32; 8]` windows whose inner loops LLVM turns into
    /// 8-lane FMAs. MR = 6, NR = 16 processed as two 8-wide halves.
    ///
    /// # Safety
    /// `c` must point at an exclusive `mr×nr` window with row stride `ldc`
    /// (same contract as the SIMD kernels).
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn gemm_micro(
        kc: usize,
        ap: &[f32],
        bp: &[f32],
        c: *mut f32,
        ldc: usize,
        mr: usize,
        nr: usize,
        epi: MicroEpi<'_>,
    ) {
        const MR: usize = 6;
        const NRH: usize = 8;
        const NR: usize = 16;

        #[inline(always)]
        fn step(acc0: &mut [[f32; NRH]; MR], acc1: &mut [[f32; NRH]; MR], a: &[f32], b: &[f32]) {
            let a: &[f32; MR] = a.try_into().unwrap();
            let b0: &[f32; NRH] = b[..NRH].try_into().unwrap();
            let b1: &[f32; NRH] = b[NRH..NR].try_into().unwrap();
            for i in 0..MR {
                let ai = a[i];
                for j in 0..NRH {
                    // `mul_add` lowers to a hardware FMA once the j-loop
                    // vectorizes (Rust never contracts `a*b + c` on its
                    // own).
                    acc0[i][j] = ai.mul_add(b0[j], acc0[i][j]);
                }
                for j in 0..NRH {
                    acc1[i][j] = ai.mul_add(b1[j], acc1[i][j]);
                }
            }
        }

        /// The k-loop lives in its own function that returns the
        /// accumulators **by value**: promoted to registers for the whole
        /// loop, materialized once on exit. Accumulating into arrays the
        /// enclosing scope later indexes dynamically would instead leave
        /// the alloca live and spill every iteration (measured 1.6×
        /// slower).
        #[inline(always)]
        fn accumulate(kc: usize, ap: &[f32], bp: &[f32]) -> ([[f32; NRH]; MR], [[f32; NRH]; MR]) {
            let mut acc0 = [[0.0f32; NRH]; MR];
            let mut acc1 = [[0.0f32; NRH]; MR];
            // Two depth steps per iteration: the even unroll keeps the
            // accumulator registers in place (an odd rotation costs a
            // register-copy per row per step, which hurts FMA throughput).
            let kc2 = kc & !1;
            let mut p = 0;
            while p < kc2 {
                step(&mut acc0, &mut acc1, &ap[p * MR..(p + 1) * MR], &bp[p * NR..(p + 1) * NR]);
                step(
                    &mut acc0,
                    &mut acc1,
                    &ap[(p + 1) * MR..(p + 2) * MR],
                    &bp[(p + 1) * NR..(p + 2) * NR],
                );
                p += 2;
            }
            if p < kc {
                step(&mut acc0, &mut acc1, &ap[p * MR..(p + 1) * MR], &bp[p * NR..(p + 1) * NR]);
            }
            (acc0, acc1)
        }

        let (acc0, acc1) = accumulate(kc, ap, bp);

        for i in 0..mr {
            let crow = std::slice::from_raw_parts_mut(c.add(i * ldc), nr);
            match epi {
                MicroEpi::Add => {
                    for (j, cv) in crow.iter_mut().enumerate() {
                        let half = if j < NRH { &acc0 } else { &acc1 };
                        *cv += half[i][j % NRH];
                    }
                }
                MicroEpi::AddBias(bias) => {
                    for (j, cv) in crow.iter_mut().enumerate() {
                        let half = if j < NRH { &acc0 } else { &acc1 };
                        *cv += half[i][j % NRH] + bias[j];
                    }
                }
                MicroEpi::Assign => {
                    for (j, cv) in crow.iter_mut().enumerate() {
                        let half = if j < NRH { &acc0 } else { &acc1 };
                        *cv = half[i][j % NRH];
                    }
                }
            }
        }
    }

    /// The scalar tier stores partial tiles through the same per-element
    /// loops either way, so the "spill baseline" entry point is the kernel
    /// itself.
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn gemm_micro_spill(
        kc: usize,
        ap: &[f32],
        bp: &[f32],
        c: *mut f32,
        ldc: usize,
        mr: usize,
        nr: usize,
        epi: MicroEpi<'_>,
    ) {
        gemm_micro(kc, ap, bp, c, ldc, mr, nr, epi)
    }

    /// Scalar transpose-gather pack (the pre-SIMD loop, and the reference
    /// the vector path is bitwise-tested against):
    /// `dst[p·pad + i] = α · src[i·stride + p]`, rows `rows..pad` zeroed.
    ///
    /// # Safety
    /// `src` readable at `i·stride + p` for `i < rows`, `p < kc`; `dst`
    /// writable for `pad·kc` elements.
    pub unsafe fn pack_transpose(
        src: *const f32,
        stride: usize,
        rows: usize,
        pad: usize,
        kc: usize,
        dst: *mut f32,
        alpha: f32,
    ) {
        for p in 0..kc {
            let d = dst.add(p * pad);
            for i in 0..rows {
                *d.add(i) = alpha * *src.add(i * stride + p);
            }
            for i in rows..pad {
                *d.add(i) = 0.0;
            }
        }
    }

    /// Scalar bf16 → f32 decode sweep (exact — a 16-bit left shift per
    /// element — and the reference the SIMD tiers are tested against).
    pub fn bf16_decode(src: &[u16], dst: &mut [f32]) {
        for (d, &s) in dst.iter_mut().zip(src) {
            *d = crate::dtype::bf16_to_f32(s);
        }
    }

    /// Scalar f32 → bf16 encode sweep: the reference round-to-nearest-even
    /// (NaN quieted) every SIMD tier must reproduce bit for bit.
    pub fn bf16_encode(src: &[f32], dst: &mut [u16]) {
        for (d, &s) in dst.iter_mut().zip(src) {
            *d = crate::dtype::f32_to_bf16(s);
        }
    }

    /// [`pack_transpose`] reading a bf16 source. Decode is exact, so the
    /// packed panel is bitwise identical to decoding the whole operand to
    /// f32 first and running the f32 pack — at half the source bytes.
    ///
    /// # Safety
    /// As [`pack_transpose`], with `src` counted in u16 elements.
    pub unsafe fn pack_transpose_bf16(
        src: *const u16,
        stride: usize,
        rows: usize,
        pad: usize,
        kc: usize,
        dst: *mut f32,
        alpha: f32,
    ) {
        for p in 0..kc {
            let d = dst.add(p * pad);
            for i in 0..rows {
                *d.add(i) = alpha * crate::dtype::bf16_to_f32(*src.add(i * stride + p));
            }
            for i in rows..pad {
                *d.add(i) = 0.0;
            }
        }
    }
}

/// Chan's parallel combine of a chunk's shifted `(s, s2)` sums into the
/// running `(mean, M2)` pair — shared by the scalar and SIMD Welford
/// sweeps so only the in-chunk summation differs between ISAs.
#[inline(always)]
fn combine_chunk(
    mean: f32,
    m2: f32,
    count: usize,
    shift: f32,
    s: f32,
    s2: f32,
    chunk_len: usize,
) -> (f32, f32) {
    let c = chunk_len as f32;
    let chunk_mean = shift + s / c;
    // M2 of the chunk around its own mean.
    let chunk_m2 = (s2 - s * (s / c)).max(0.0);
    let total = count as f32 + c;
    let delta = chunk_mean - mean;
    (
        mean + delta * (c / total),
        m2 + chunk_m2 + delta * delta * (count as f32 * c / total),
    )
}

/// AdamW per-element update, shared between the scalar sweep and the SIMD
/// tails so every path rounds identically.
#[inline(always)]
fn adamw_scalar_step(x: &mut f32, mm: &mut f32, vv: &mut f32, gg: f32, h: &AdamParams) {
    *mm = h.beta1 * *mm + (1.0 - h.beta1) * gg;
    *vv = h.beta2 * *vv + (1.0 - h.beta2) * gg * gg;
    let mhat = *mm / h.bias_c1;
    let vhat = *vv / h.bias_c2;
    *x -= h.lr * (mhat / (vhat.sqrt() + h.eps) + h.weight_decay * *x);
}

// ---------------------------------------------------------------------------
// x86 vector abstraction + SIMD kernels
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod x86 {
    #![allow(clippy::missing_safety_doc)] // blanket contract: see `Vf32`
    use super::{AdamParams, MicroEpi, WELFORD_CHUNK};
    use core::arch::x86_64::*;

    /// Lane-parallel f32 vector: the abstraction every SIMD kernel is
    /// written over, instantiated as [`F32x8`] (AVX2+FMA) and [`F32x16`]
    /// (AVX-512F).
    ///
    /// # Safety
    ///
    /// Every method lowers to ISA intrinsics. Callers must only invoke
    /// them from a context where the matching target features are enabled
    /// (i.e. inside the `#[target_feature]` wrappers below, after runtime
    /// detection); the methods are `#[inline(always)]` so they compile to
    /// single instructions there.
    pub(super) trait Vf32: Copy {
        const LANES: usize;
        unsafe fn splat(v: f32) -> Self;
        unsafe fn zero() -> Self;
        unsafe fn load(p: *const f32) -> Self;
        unsafe fn store(self, p: *mut f32);
        unsafe fn add(self, o: Self) -> Self;
        unsafe fn sub(self, o: Self) -> Self;
        unsafe fn mul(self, o: Self) -> Self;
        unsafe fn div(self, o: Self) -> Self;
        /// Lanewise minimum; returns the **second** operand when either
        /// lane is NaN (x86 `minps` semantics), so `hi.min(x)` propagates
        /// a NaN in `x`.
        unsafe fn min(self, o: Self) -> Self;
        /// Lanewise maximum; NaN semantics as [`Vf32::min`].
        unsafe fn max(self, o: Self) -> Self;
        /// `self * b + c`, fused.
        unsafe fn mul_add(self, b: Self, c: Self) -> Self;
        /// Lanewise select: `mask` sign bit set → take from `o`, else from
        /// `self`. Part of the abstraction surface (predicated kernels); the
        /// masked *memory* tails below use dedicated mask loads/stores
        /// instead — a blend-based tail would have to read and write the
        /// full vector width, which is out of bounds at buffer edges.
        #[allow(dead_code)]
        unsafe fn blend(self, o: Self, mask: Self) -> Self;
        /// Masked load of the first `n` lanes (`0 ≤ n ≤ LANES`); lanes at
        /// and past `n` are zero. Bytes past `p + n` are **never read** —
        /// AVX-512 mask registers / AVX2 `vmaskmovps` guarantee the
        /// suppressed lanes generate no memory access, so partial tiles can
        /// sit flush against the end of an allocation.
        unsafe fn load_partial(p: *const f32, n: usize) -> Self;
        /// Masked store of the first `n` lanes; bytes past `p + n` are
        /// never written (same suppression guarantee as
        /// [`Vf32::load_partial`]).
        unsafe fn store_partial(self, p: *mut f32, n: usize);
        unsafe fn sqrt(self) -> Self;
        /// `2^(self as i32)` per lane by exponent-field assembly; lanes
        /// must hold integer-valued floats in `[-126, 127]`.
        unsafe fn exp2i(self) -> Self;
        /// Horizontal sum, fixed tree order (halves, then quarters, …).
        unsafe fn reduce_add(self) -> f32;
        /// Horizontal max, same tree order.
        unsafe fn reduce_max(self) -> f32;
    }

    /// Lane-index mask for AVX2 masked memory ops: lane `i` active iff
    /// `i < n` (`vmaskmovps` keys off each lane's sign bit).
    #[inline(always)]
    unsafe fn lane_mask8(n: usize) -> __m256i {
        _mm256_cmpgt_epi32(
            _mm256_set1_epi32(n as i32),
            _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7),
        )
    }

    /// 8 × f32 in one YMM register (AVX2 + FMA tier).
    #[derive(Clone, Copy)]
    pub(super) struct F32x8(__m256);

    impl Vf32 for F32x8 {
        const LANES: usize = 8;
        #[inline(always)]
        unsafe fn splat(v: f32) -> Self {
            F32x8(_mm256_set1_ps(v))
        }
        #[inline(always)]
        unsafe fn zero() -> Self {
            F32x8(_mm256_setzero_ps())
        }
        #[inline(always)]
        unsafe fn load(p: *const f32) -> Self {
            F32x8(_mm256_loadu_ps(p))
        }
        #[inline(always)]
        unsafe fn store(self, p: *mut f32) {
            _mm256_storeu_ps(p, self.0)
        }
        #[inline(always)]
        unsafe fn add(self, o: Self) -> Self {
            F32x8(_mm256_add_ps(self.0, o.0))
        }
        #[inline(always)]
        unsafe fn sub(self, o: Self) -> Self {
            F32x8(_mm256_sub_ps(self.0, o.0))
        }
        #[inline(always)]
        unsafe fn mul(self, o: Self) -> Self {
            F32x8(_mm256_mul_ps(self.0, o.0))
        }
        #[inline(always)]
        unsafe fn div(self, o: Self) -> Self {
            F32x8(_mm256_div_ps(self.0, o.0))
        }
        #[inline(always)]
        unsafe fn min(self, o: Self) -> Self {
            F32x8(_mm256_min_ps(self.0, o.0))
        }
        #[inline(always)]
        unsafe fn max(self, o: Self) -> Self {
            F32x8(_mm256_max_ps(self.0, o.0))
        }
        #[inline(always)]
        unsafe fn mul_add(self, b: Self, c: Self) -> Self {
            F32x8(_mm256_fmadd_ps(self.0, b.0, c.0))
        }
        #[inline(always)]
        unsafe fn blend(self, o: Self, mask: Self) -> Self {
            F32x8(_mm256_blendv_ps(self.0, o.0, mask.0))
        }
        #[inline(always)]
        unsafe fn load_partial(p: *const f32, n: usize) -> Self {
            // `vmaskmovps`: suppressed lanes perform no load and read as 0.
            F32x8(_mm256_maskload_ps(p, lane_mask8(n)))
        }
        #[inline(always)]
        unsafe fn store_partial(self, p: *mut f32, n: usize) {
            _mm256_maskstore_ps(p, lane_mask8(n), self.0)
        }
        #[inline(always)]
        unsafe fn sqrt(self) -> Self {
            F32x8(_mm256_sqrt_ps(self.0))
        }
        #[inline(always)]
        unsafe fn exp2i(self) -> Self {
            let n = _mm256_cvttps_epi32(self.0);
            let e = _mm256_slli_epi32(_mm256_add_epi32(n, _mm256_set1_epi32(127)), 23);
            F32x8(_mm256_castsi256_ps(e))
        }
        #[inline(always)]
        unsafe fn reduce_add(self) -> f32 {
            let lo = _mm256_castps256_ps128(self.0);
            let hi = _mm256_extractf128_ps(self.0, 1);
            let s = _mm_add_ps(lo, hi);
            let s = _mm_add_ps(s, _mm_movehl_ps(s, s));
            let s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
            _mm_cvtss_f32(s)
        }
        #[inline(always)]
        unsafe fn reduce_max(self) -> f32 {
            let lo = _mm256_castps256_ps128(self.0);
            let hi = _mm256_extractf128_ps(self.0, 1);
            let s = _mm_max_ps(lo, hi);
            let s = _mm_max_ps(s, _mm_movehl_ps(s, s));
            let s = _mm_max_ss(s, _mm_shuffle_ps(s, s, 1));
            _mm_cvtss_f32(s)
        }
    }

    /// 16 × f32 in one ZMM register (AVX-512F tier).
    #[derive(Clone, Copy)]
    pub(super) struct F32x16(__m512);

    impl Vf32 for F32x16 {
        const LANES: usize = 16;
        #[inline(always)]
        unsafe fn splat(v: f32) -> Self {
            F32x16(_mm512_set1_ps(v))
        }
        #[inline(always)]
        unsafe fn zero() -> Self {
            F32x16(_mm512_setzero_ps())
        }
        #[inline(always)]
        unsafe fn load(p: *const f32) -> Self {
            F32x16(_mm512_loadu_ps(p))
        }
        #[inline(always)]
        unsafe fn store(self, p: *mut f32) {
            _mm512_storeu_ps(p, self.0)
        }
        #[inline(always)]
        unsafe fn add(self, o: Self) -> Self {
            F32x16(_mm512_add_ps(self.0, o.0))
        }
        #[inline(always)]
        unsafe fn sub(self, o: Self) -> Self {
            F32x16(_mm512_sub_ps(self.0, o.0))
        }
        #[inline(always)]
        unsafe fn mul(self, o: Self) -> Self {
            F32x16(_mm512_mul_ps(self.0, o.0))
        }
        #[inline(always)]
        unsafe fn div(self, o: Self) -> Self {
            F32x16(_mm512_div_ps(self.0, o.0))
        }
        #[inline(always)]
        unsafe fn min(self, o: Self) -> Self {
            F32x16(_mm512_min_ps(self.0, o.0))
        }
        #[inline(always)]
        unsafe fn max(self, o: Self) -> Self {
            F32x16(_mm512_max_ps(self.0, o.0))
        }
        #[inline(always)]
        unsafe fn mul_add(self, b: Self, c: Self) -> Self {
            F32x16(_mm512_fmadd_ps(self.0, b.0, c.0))
        }
        #[inline(always)]
        unsafe fn blend(self, o: Self, mask: Self) -> Self {
            // Sign-bit select via the mask register form (AVX-512 has no
            // blendv; movepi32_mask extracts lane sign bits).
            let m = _mm512_movepi32_mask(_mm512_castps_si512(mask.0));
            F32x16(_mm512_mask_blend_ps(m, self.0, o.0))
        }
        #[inline(always)]
        unsafe fn load_partial(p: *const f32, n: usize) -> Self {
            // `n ≤ 16`, so the u32 shift never overflows; masked-off lanes
            // are zeroed and generate no memory access.
            let m = (1u32.wrapping_shl(n as u32) - 1) as __mmask16;
            F32x16(_mm512_maskz_loadu_ps(m, p))
        }
        #[inline(always)]
        unsafe fn store_partial(self, p: *mut f32, n: usize) {
            let m = (1u32.wrapping_shl(n as u32) - 1) as __mmask16;
            _mm512_mask_storeu_ps(p, m, self.0)
        }
        #[inline(always)]
        unsafe fn sqrt(self) -> Self {
            F32x16(_mm512_sqrt_ps(self.0))
        }
        #[inline(always)]
        unsafe fn exp2i(self) -> Self {
            let n = _mm512_cvttps_epi32(self.0);
            let e = _mm512_slli_epi32(_mm512_add_epi32(n, _mm512_set1_epi32(127)), 23);
            F32x16(_mm512_castsi512_ps(e))
        }
        #[inline(always)]
        unsafe fn reduce_add(self) -> f32 {
            // Quarter extraction is plain AVX-512F (extractf32x8 would need
            // DQ); fold ((q0+q1)+(q2+q3)) then the 128-bit tree.
            let q0 = _mm512_extractf32x4_ps(self.0, 0);
            let q1 = _mm512_extractf32x4_ps(self.0, 1);
            let q2 = _mm512_extractf32x4_ps(self.0, 2);
            let q3 = _mm512_extractf32x4_ps(self.0, 3);
            let s = _mm_add_ps(_mm_add_ps(q0, q1), _mm_add_ps(q2, q3));
            let s = _mm_add_ps(s, _mm_movehl_ps(s, s));
            let s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
            _mm_cvtss_f32(s)
        }
        #[inline(always)]
        unsafe fn reduce_max(self) -> f32 {
            let q0 = _mm512_extractf32x4_ps(self.0, 0);
            let q1 = _mm512_extractf32x4_ps(self.0, 1);
            let q2 = _mm512_extractf32x4_ps(self.0, 2);
            let q3 = _mm512_extractf32x4_ps(self.0, 3);
            let s = _mm_max_ps(_mm_max_ps(q0, q1), _mm_max_ps(q2, q3));
            let s = _mm_max_ps(s, _mm_movehl_ps(s, s));
            let s = _mm_max_ss(s, _mm_shuffle_ps(s, s, 1));
            _mm_cvtss_f32(s)
        }
    }

    // ---- generic vector math (mirrors the scalar kernels op-for-op) ----

    /// Clamp with NaN propagation: `hi.min(lo.max(x))` keeps `x` in the
    /// second operand of both ops, so x86 NaN semantics pass NaN through.
    #[inline(always)]
    unsafe fn vclamp<V: Vf32>(x: V, lo: V, hi: V) -> V {
        hi.min(lo.max(x))
    }

    /// Lane-parallel [`super::exp_fast`], identical operation sequence.
    #[inline(always)]
    unsafe fn vexp<V: Vf32>(x: V) -> V {
        use super::*;
        let x = vclamp(x, V::splat(EXP_LO), V::splat(EXP_HI));
        let magic = V::splat(MAGIC);
        let n = x.mul(V::splat(LOG2E)).add(magic).sub(magic);
        let r = n.mul_add(V::splat(-LN2_HI), x);
        let r = n.mul_add(V::splat(-LN2_LO), r);
        let p = r.mul_add(V::splat(EXP_P0), V::splat(EXP_P1));
        let p = r.mul_add(p, V::splat(EXP_P2));
        let p = r.mul_add(p, V::splat(EXP_P3));
        let p = r.mul_add(p, V::splat(EXP_P4));
        let p = r.mul_add(p, V::splat(EXP_P5));
        let er = p.mul(r).mul_add(r, r).add(V::splat(1.0));
        er.mul(n.exp2i())
    }

    /// Lane-parallel [`super::tanh_fast`], identical operation sequence.
    #[inline(always)]
    unsafe fn vtanh<V: Vf32>(x: V) -> V {
        use super::*;
        let x = vclamp(x, V::splat(-TANH_BOUND), V::splat(TANH_BOUND));
        let x2 = x.mul(x);
        let p = x2.mul_add(V::splat(TANH_A13), V::splat(TANH_A11));
        let p = x2.mul_add(p, V::splat(TANH_A9));
        let p = x2.mul_add(p, V::splat(TANH_A7));
        let p = x2.mul_add(p, V::splat(TANH_A5));
        let p = x2.mul_add(p, V::splat(TANH_A3));
        let p = x.mul(x2.mul_add(p, V::splat(TANH_A1)));
        let q = x2.mul_add(V::splat(TANH_B6), V::splat(TANH_B4));
        let q = x2.mul_add(q, V::splat(TANH_B2));
        let q = x2.mul_add(q, V::splat(TANH_B0));
        p.div(q)
    }

    /// Lane-parallel [`super::gelu_scalar`], identical operation sequence.
    #[inline(always)]
    unsafe fn vgelu<V: Vf32>(x: V) -> V {
        use super::*;
        let x3 = V::splat(GELU_C).mul(x).mul(x).mul(x);
        let t = vtanh(V::splat(SQRT_2_OVER_PI).mul(x.add(x3)));
        V::splat(0.5).mul(x).mul(V::splat(1.0).add(t))
    }

    // ---- generic sweep bodies ----

    #[inline(always)]
    unsafe fn row_max_v<V: Vf32>(row: &[f32]) -> f32 {
        let n = row.len() / V::LANES * V::LANES;
        let p = row.as_ptr();
        let mut m = super::scalar::row_max(&row[n..]);
        if n > 0 {
            let mut acc = V::load(p);
            let mut i = V::LANES;
            while i < n {
                acc = acc.max(V::load(p.add(i)));
                i += V::LANES;
            }
            m = m.max(acc.reduce_max());
        }
        m
    }

    #[inline(always)]
    unsafe fn row_sum_v<V: Vf32>(row: &[f32]) -> f32 {
        let n = row.len() / V::LANES * V::LANES;
        let p = row.as_ptr();
        let mut acc = V::zero();
        let mut i = 0;
        while i < n {
            acc = acc.add(V::load(p.add(i)));
            i += V::LANES;
        }
        acc.reduce_add() + super::scalar::row_sum(&row[n..])
    }

    #[inline(always)]
    unsafe fn exp_sub_sweep_v<V: Vf32>(row: &mut [f32], m: f32) {
        let n = row.len() / V::LANES * V::LANES;
        let p = row.as_mut_ptr();
        let mv = V::splat(m);
        let mut i = 0;
        while i < n {
            vexp(V::load(p.add(i)).sub(mv)).store(p.add(i));
            i += V::LANES;
        }
        super::scalar::exp_sub_sweep(&mut row[n..], m);
    }

    #[inline(always)]
    unsafe fn gelu_ptr_v<V: Vf32>(src: *const f32, dst: *mut f32, len: usize) {
        let n = len / V::LANES * V::LANES;
        let mut i = 0;
        while i < n {
            vgelu(V::load(src.add(i))).store(dst.add(i));
            i += V::LANES;
        }
        for j in n..len {
            *dst.add(j) = super::gelu_scalar(*src.add(j));
        }
    }

    #[inline(always)]
    unsafe fn welford_v<V: Vf32>(row: &[f32]) -> (f32, f32) {
        let n = row.len();
        let mut mean = 0.0f32;
        let mut m2 = 0.0f32;
        let mut count = 0usize;
        for chunk in row.chunks(WELFORD_CHUNK) {
            let shift = chunk[0];
            let nv = chunk.len() / V::LANES * V::LANES;
            let p = chunk.as_ptr();
            let sv = V::splat(shift);
            let mut sacc = V::zero();
            let mut s2acc = V::zero();
            let mut i = 0;
            while i < nv {
                let v = V::load(p.add(i)).sub(sv);
                sacc = sacc.add(v);
                s2acc = v.mul_add(v, s2acc);
                i += V::LANES;
            }
            let mut s = sacc.reduce_add();
            let mut s2 = s2acc.reduce_add();
            for &x in &chunk[nv..] {
                let v = x - shift;
                s += v;
                s2 = v.mul_add(v, s2);
            }
            let (mean2, m22) = super::combine_chunk(mean, m2, count, shift, s, s2, chunk.len());
            mean = mean2;
            m2 = m22;
            count += chunk.len();
        }
        (mean, m2 / n as f32)
    }

    #[inline(always)]
    unsafe fn adamw_v<V: Vf32>(
        p: &mut [f32],
        m: &mut [f32],
        v: &mut [f32],
        g: &[f32],
        h: &AdamParams,
    ) {
        let n = p.len() / V::LANES * V::LANES;
        let (b1, b2) = (V::splat(h.beta1), V::splat(h.beta2));
        let (ob1, ob2) = (V::splat(1.0 - h.beta1), V::splat(1.0 - h.beta2));
        let (bc1, bc2) = (V::splat(h.bias_c1), V::splat(h.bias_c2));
        let (lr, eps, wd) = (V::splat(h.lr), V::splat(h.eps), V::splat(h.weight_decay));
        let (pp, mp, vp, gp) = (p.as_mut_ptr(), m.as_mut_ptr(), v.as_mut_ptr(), g.as_ptr());
        let mut i = 0;
        while i < n {
            let gg = V::load(gp.add(i));
            // Same op order as `adamw_scalar_step`: (β·m) + ((1−β)·g),
            // no FMA contraction, so lanes round like the scalar path.
            let mm = b1.mul(V::load(mp.add(i))).add(ob1.mul(gg));
            let vv = b2.mul(V::load(vp.add(i))).add(ob2.mul(gg).mul(gg));
            mm.store(mp.add(i));
            vv.store(vp.add(i));
            let mhat = mm.div(bc1);
            let vhat = vv.div(bc2);
            let x = V::load(pp.add(i));
            let upd = mhat.div(vhat.sqrt().add(eps)).add(wd.mul(x));
            x.sub(lr.mul(upd)).store(pp.add(i));
            i += V::LANES;
        }
        for j in n..p.len() {
            super::adamw_scalar_step(&mut p[j], &mut m[j], &mut v[j], g[j], h);
        }
    }

    /// Full-tile k-loop: `MRV × 2` accumulator vectors, one A broadcast
    /// feeding two FMAs per row per depth step. Returned **by value** so
    /// the accumulators stay register-resident (see the scalar kernel's
    /// spill note).
    #[inline(always)]
    unsafe fn gemm_acc_full_v<V: Vf32, const MRV: usize>(
        kc: usize,
        ap: *const f32,
        bp: *const f32,
    ) -> [[V; 2]; MRV] {
        let nrv = 2 * V::LANES;
        let mut acc = [[V::zero(); 2]; MRV];
        let mut p = 0;
        while p < kc {
            let b0 = V::load(bp.add(p * nrv));
            let b1 = V::load(bp.add(p * nrv + V::LANES));
            let a = ap.add(p * MRV);
            for (i, accr) in acc.iter_mut().enumerate() {
                let ai = V::splat(*a.add(i));
                accr[0] = ai.mul_add(b0, accr[0]);
                accr[1] = ai.mul_add(b1, accr[1]);
            }
            p += 1;
        }
        acc
    }

    /// Fused full-tile store (`mr == MRV`, `nr == 2·LANES`): the epilogue
    /// rides in the register stores.
    #[inline(always)]
    unsafe fn gemm_store_full_v<V: Vf32, const MRV: usize>(
        acc: &[[V; 2]; MRV],
        c: *mut f32,
        ldc: usize,
        epi: MicroEpi<'_>,
    ) {
        match epi {
            MicroEpi::Add => {
                for (i, a) in acc.iter().enumerate() {
                    let cp = c.add(i * ldc);
                    V::load(cp).add(a[0]).store(cp);
                    let cp1 = cp.add(V::LANES);
                    V::load(cp1).add(a[1]).store(cp1);
                }
            }
            MicroEpi::AddBias(bias) => {
                // Matches the scalar epilogue's `c + (acc + bias)`.
                let bv0 = V::load(bias.as_ptr());
                let bv1 = V::load(bias.as_ptr().add(V::LANES));
                for (i, a) in acc.iter().enumerate() {
                    let cp = c.add(i * ldc);
                    V::load(cp).add(a[0].add(bv0)).store(cp);
                    let cp1 = cp.add(V::LANES);
                    V::load(cp1).add(a[1].add(bv1)).store(cp1);
                }
            }
            MicroEpi::Assign => {
                for (i, a) in acc.iter().enumerate() {
                    let cp = c.add(i * ldc);
                    a[0].store(cp);
                    a[1].store(cp.add(V::LANES));
                }
            }
        }
    }

    /// Edge-tile micro-kernel, instantiated per compile-time row count
    /// `MR` (≤ the ISA's full tile rows) and accumulator width `NV`
    /// vectors (1 when the tile's columns fit one vector). Two wins over
    /// the old scratch-spill path: partial tiles pay only their true share
    /// of FMAs (an `mr = 1` strip no longer runs the full `MRV`-row
    /// k-loop on zero padding, a `nr ≤ LANES` strip halves the FMA width),
    /// and the store is masked — lanes past `nr` generate no memory
    /// access, so there is no scratch round-trip and no scalar tail loop.
    ///
    /// Each output element still accumulates strictly k-major with one FMA
    /// per depth step, so edge tiles round exactly like the full-tile and
    /// scalar kernels (the ≤ 2 ulp policy holds tile-shape-independently).
    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    unsafe fn gemm_micro_edge_v<V: Vf32, const MR: usize, const NV: usize>(
        kc: usize,
        ap: *const f32,
        mrv: usize,
        bp: *const f32,
        nrv: usize,
        c: *mut f32,
        ldc: usize,
        nr: usize,
        epi: MicroEpi<'_>,
    ) {
        debug_assert!(nr <= NV * V::LANES && NV <= 2);
        let mut acc = [[V::zero(); NV]; MR];
        let mut p = 0;
        while p < kc {
            let mut b = [V::zero(); NV];
            for (v, bv) in b.iter_mut().enumerate() {
                *bv = V::load(bp.add(p * nrv + v * V::LANES));
            }
            let a = ap.add(p * mrv);
            for (i, accr) in acc.iter_mut().enumerate() {
                let ai = V::splat(*a.add(i));
                for (v, accv) in accr.iter_mut().enumerate() {
                    *accv = ai.mul_add(b[v], *accv);
                }
            }
            p += 1;
        }
        for (i, accr) in acc.iter().enumerate() {
            let cp = c.add(i * ldc);
            for (v, &av) in accr.iter().enumerate() {
                let off = v * V::LANES;
                if off >= nr {
                    break;
                }
                let lanes = (nr - off).min(V::LANES);
                let cpv = cp.add(off);
                match epi {
                    MicroEpi::Add => {
                        V::load_partial(cpv, lanes).add(av).store_partial(cpv, lanes);
                    }
                    MicroEpi::AddBias(bias) => {
                        // Same op order as the full tile: c + (acc + bias).
                        let bv = V::load_partial(bias.as_ptr().add(off), lanes);
                        V::load_partial(cpv, lanes)
                            .add(av.add(bv))
                            .store_partial(cpv, lanes);
                    }
                    MicroEpi::Assign => av.store_partial(cpv, lanes),
                }
            }
        }
    }

    /// Dispatch an edge tile onto the const-row-count instantiation: a
    /// runtime-bounded accumulator loop would keep the array addressable
    /// and spill it every k iteration (the measured-1.6× lesson from the
    /// scalar kernel), so each possible `mr` gets its own fully-unrolled
    /// kernel. Arms past the ISA's tile rows are unreachable.
    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    unsafe fn gemm_micro_edge<V: Vf32, const MRV: usize>(
        kc: usize,
        ap: *const f32,
        bp: *const f32,
        nrv: usize,
        c: *mut f32,
        ldc: usize,
        mr: usize,
        nr: usize,
        epi: MicroEpi<'_>,
    ) {
        macro_rules! rows {
            ($m:literal) => {
                if nr <= V::LANES {
                    gemm_micro_edge_v::<V, $m, 1>(kc, ap, MRV, bp, nrv, c, ldc, nr, epi)
                } else {
                    gemm_micro_edge_v::<V, $m, 2>(kc, ap, MRV, bp, nrv, c, ldc, nr, epi)
                }
            };
        }
        match mr {
            1 => rows!(1),
            2 => rows!(2),
            3 => rows!(3),
            4 => rows!(4),
            5 => rows!(5),
            6 => rows!(6),
            7 => rows!(7),
            _ => rows!(8),
        }
    }

    /// GEMM micro-kernel over packed panels: `C[0..mr, 0..nr] (epi)=
    /// Ap(kc×MRV) · Bp(kc×NRV)` where `NRV = 2·LANES`. Full tiles store
    /// straight from the registers with the epilogue fused; partial tiles
    /// route to the trimmed masked-tail kernels ([`gemm_micro_edge_v`]).
    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    unsafe fn gemm_micro_v<V: Vf32, const MRV: usize>(
        kc: usize,
        ap: *const f32,
        bp: *const f32,
        c: *mut f32,
        ldc: usize,
        mr: usize,
        nr: usize,
        epi: MicroEpi<'_>,
    ) {
        let nrv = 2 * V::LANES;
        if mr != MRV || nr != nrv {
            return gemm_micro_edge::<V, MRV>(kc, ap, bp, nrv, c, ldc, mr, nr, epi);
        }
        let acc = gemm_acc_full_v::<V, MRV>(kc, ap, bp);
        gemm_store_full_v(&acc, c, ldc, epi);
    }

    /// The pre-masked-tail micro-kernel, kept verbatim as the **baseline**
    /// for the `gemm_ragged_*` BENCH entries and the edge-path parity
    /// tests: full tiles store fused, edge tiles spill the whole register
    /// block to a scratch array and copy out scalar.
    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    unsafe fn gemm_micro_spill_v<V: Vf32, const MRV: usize>(
        kc: usize,
        ap: *const f32,
        bp: *const f32,
        c: *mut f32,
        ldc: usize,
        mr: usize,
        nr: usize,
        epi: MicroEpi<'_>,
    ) {
        let nrv = 2 * V::LANES;
        let acc = gemm_acc_full_v::<V, MRV>(kc, ap, bp);
        if mr == MRV && nr == nrv {
            gemm_store_full_v(&acc, c, ldc, epi);
        } else {
            let mut tmp = [0.0f32; super::GEMM_MAX_MR * super::GEMM_MAX_NR];
            for (i, a) in acc.iter().enumerate().take(mr) {
                a[0].store(tmp.as_mut_ptr().add(i * nrv));
                a[1].store(tmp.as_mut_ptr().add(i * nrv + V::LANES));
            }
            for i in 0..mr {
                let crow = std::slice::from_raw_parts_mut(c.add(i * ldc), nr);
                let trow = &tmp[i * nrv..i * nrv + nr];
                match epi {
                    MicroEpi::Add => {
                        for (cv, &t) in crow.iter_mut().zip(trow) {
                            *cv += t;
                        }
                    }
                    MicroEpi::AddBias(bias) => {
                        for ((cv, &t), &bv) in crow.iter_mut().zip(trow).zip(bias) {
                            *cv += t + bv;
                        }
                    }
                    MicroEpi::Assign => crow.copy_from_slice(trow),
                }
            }
        }
    }

    // ---- SIMD panel packing: transpose-gather via 8×8 shuffle blocks ----

    /// In-register 8×8 f32 transpose: unpack pairs, shuffle quads, then
    /// swap 128-bit halves (the classic AVX recipe — 24 shuffle-port ops
    /// for 64 elements, vs 64 scalar loads for the gather it replaces).
    #[inline(always)]
    unsafe fn transpose8x8(r: [__m256; 8]) -> [__m256; 8] {
        let t0 = _mm256_unpacklo_ps(r[0], r[1]);
        let t1 = _mm256_unpackhi_ps(r[0], r[1]);
        let t2 = _mm256_unpacklo_ps(r[2], r[3]);
        let t3 = _mm256_unpackhi_ps(r[2], r[3]);
        let t4 = _mm256_unpacklo_ps(r[4], r[5]);
        let t5 = _mm256_unpackhi_ps(r[4], r[5]);
        let t6 = _mm256_unpacklo_ps(r[6], r[7]);
        let t7 = _mm256_unpackhi_ps(r[6], r[7]);
        let s0 = _mm256_shuffle_ps(t0, t2, 0b01_00_01_00);
        let s1 = _mm256_shuffle_ps(t0, t2, 0b11_10_11_10);
        let s2 = _mm256_shuffle_ps(t1, t3, 0b01_00_01_00);
        let s3 = _mm256_shuffle_ps(t1, t3, 0b11_10_11_10);
        let s4 = _mm256_shuffle_ps(t4, t6, 0b01_00_01_00);
        let s5 = _mm256_shuffle_ps(t4, t6, 0b11_10_11_10);
        let s6 = _mm256_shuffle_ps(t5, t7, 0b01_00_01_00);
        let s7 = _mm256_shuffle_ps(t5, t7, 0b11_10_11_10);
        [
            _mm256_permute2f128_ps(s0, s4, 0x20),
            _mm256_permute2f128_ps(s1, s5, 0x20),
            _mm256_permute2f128_ps(s2, s6, 0x20),
            _mm256_permute2f128_ps(s3, s7, 0x20),
            _mm256_permute2f128_ps(s0, s4, 0x31),
            _mm256_permute2f128_ps(s1, s5, 0x31),
            _mm256_permute2f128_ps(s2, s6, 0x31),
            _mm256_permute2f128_ps(s3, s7, 0x31),
        ]
    }

    /// Transpose-pack a `[rows × kc]` block of a row-major source (row
    /// stride `stride` elements) into a k-major interleaved micro-panel:
    /// `dst[p·pad + i] = α · src[i·stride + p]`, with panel rows
    /// `rows..pad` zero-filled. This is the strided-gather case of GEMM
    /// packing (A panels in NN/NT, B panels in NT's transposed layout) —
    /// the scalar loop walks the source one element per cycle, while 8×8
    /// blocks load eight *contiguous* runs and transpose in registers.
    ///
    /// Runs on plain AVX (8-lane), which both SIMD tiers imply; the
    /// AVX-512 tier gains nothing from 16-wide blocks here because the
    /// destination interleave `pad` is 6 or 8 rows.
    ///
    /// Bitwise identical to the scalar pack: each element sees exactly one
    /// `α · x` multiply on both paths.
    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    unsafe fn pack_transpose_avx(
        src: *const f32,
        stride: usize,
        rows: usize,
        pad: usize,
        kc: usize,
        dst: *mut f32,
        alpha: f32,
    ) {
        let av = _mm256_set1_ps(alpha);
        let mut i0 = 0;
        while i0 < pad {
            let iw = 8.min(pad - i0); // panel lanes this block stores
            let valid = rows.saturating_sub(i0).min(8); // real source rows
            let mut p0 = 0;
            while p0 < kc {
                let pw = 8.min(kc - p0);
                let mut r = [_mm256_setzero_ps(); 8];
                if pw == 8 {
                    for (i, rv) in r.iter_mut().enumerate().take(valid) {
                        let row = src.add((i0 + i) * stride + p0);
                        *rv = _mm256_mul_ps(_mm256_loadu_ps(row), av);
                    }
                } else {
                    for (i, rv) in r.iter_mut().enumerate().take(valid) {
                        let row = src.add((i0 + i) * stride + p0);
                        *rv = _mm256_mul_ps(F32x8::load_partial(row, pw).0, av);
                    }
                }
                // Rows `valid..8` stay zero vectors, so transposed lanes
                // past `rows` carry the panel's zero padding for free.
                let t = transpose8x8(r);
                if iw == 8 {
                    for (p, tv) in t.iter().enumerate().take(pw) {
                        _mm256_storeu_ps(dst.add((p0 + p) * pad + i0), *tv);
                    }
                } else {
                    for (p, &tv) in t.iter().enumerate().take(pw) {
                        F32x8(tv).store_partial(dst.add((p0 + p) * pad + i0), iw);
                    }
                }
                p0 += pw;
            }
            i0 += iw;
        }
    }

    /// bf16 lane extension of [`Vf32`]: half-width loads/stores with the
    /// convert fused in. Decode shifts each 16-bit pattern into the top
    /// half of an f32 lane (exact). Encode applies the reference
    /// round-to-nearest-even from `crate::dtype` lane-parallel and must be
    /// **bitwise identical** to the scalar encode (parity-tested per ISA),
    /// so stored bf16 tensors never depend on which tier produced them.
    pub(super) trait Bf16Lanes: Vf32 {
        /// Decode `LANES` bf16 values at `p` into f32 lanes.
        unsafe fn bf16_load(p: *const u16) -> Self;
        /// Encode `LANES` f32 lanes to bf16 (RNE, NaN quieted) at `p`.
        unsafe fn bf16_store(self, p: *mut u16);
        /// [`Bf16Lanes::bf16_load`] of the first `n ≤ LANES` values (rest
        /// zero) via a zero-padded stack copy — there are no 16-bit masked
        /// loads below AVX-512BW, and this runs only on pack block edges.
        unsafe fn bf16_load_partial(p: *const u16, n: usize) -> Self;
    }

    impl Bf16Lanes for F32x8 {
        #[inline(always)]
        unsafe fn bf16_load(p: *const u16) -> Self {
            let h = _mm_loadu_si128(p as *const __m128i);
            let w = _mm256_slli_epi32(_mm256_cvtepu16_epi32(h), 16);
            F32x8(_mm256_castsi256_ps(w))
        }
        #[inline(always)]
        unsafe fn bf16_store(self, p: *mut u16) {
            let bits = _mm256_castps_si256(self.0);
            let hi = _mm256_srli_epi32(bits, 16);
            // RNE: bits + 0x7FFF + (kept LSB), then drop the low half.
            let lsb = _mm256_and_si256(hi, _mm256_set1_epi32(1));
            let rne = _mm256_srli_epi32(
                _mm256_add_epi32(bits, _mm256_add_epi32(_mm256_set1_epi32(0x7FFF), lsb)),
                16,
            );
            // NaN lanes skip the increment (it could carry into the
            // exponent and produce ±inf) and force the quiet bit instead.
            let quiet = _mm256_or_si256(hi, _mm256_set1_epi32(0x40));
            let nan = _mm256_castps_si256(_mm256_cmp_ps(self.0, self.0, _CMP_UNORD_Q));
            let r = _mm256_blendv_epi8(rne, quiet, nan);
            // Every u32 lane is ≤ 0xFFFF, so the unsigned-saturating
            // narrow is value-preserving; pull qwords 0 and 2 of the
            // per-128-lane pack together into the low half and store it.
            let packed = _mm256_permute4x64_epi64(_mm256_packus_epi32(r, r), 0b11_10_10_00);
            _mm_storeu_si128(p as *mut __m128i, _mm256_castsi256_si128(packed));
        }
        #[inline(always)]
        unsafe fn bf16_load_partial(p: *const u16, n: usize) -> Self {
            let mut tmp = [0u16; 8];
            core::ptr::copy_nonoverlapping(p, tmp.as_mut_ptr(), n);
            Self::bf16_load(tmp.as_ptr())
        }
    }

    impl Bf16Lanes for F32x16 {
        #[inline(always)]
        unsafe fn bf16_load(p: *const u16) -> Self {
            let h = _mm256_loadu_si256(p as *const __m256i);
            let w = _mm512_slli_epi32(_mm512_cvtepu16_epi32(h), 16);
            F32x16(_mm512_castsi512_ps(w))
        }
        #[inline(always)]
        unsafe fn bf16_store(self, p: *mut u16) {
            let bits = _mm512_castps_si512(self.0);
            let hi = _mm512_srli_epi32(bits, 16);
            let lsb = _mm512_and_si512(hi, _mm512_set1_epi32(1));
            let rne = _mm512_srli_epi32(
                _mm512_add_epi32(bits, _mm512_add_epi32(_mm512_set1_epi32(0x7FFF), lsb)),
                16,
            );
            let quiet = _mm512_or_si512(hi, _mm512_set1_epi32(0x40));
            let nan = _mm512_cmp_ps_mask(self.0, self.0, _CMP_UNORD_Q);
            let r = _mm512_mask_blend_epi32(nan, rne, quiet);
            // VPMOVDW (plain AVX-512F) truncates each dword to a word —
            // exact here since every lane is ≤ 0xFFFF.
            _mm256_storeu_si256(p as *mut __m256i, _mm512_cvtepi32_epi16(r));
        }
        #[inline(always)]
        unsafe fn bf16_load_partial(p: *const u16, n: usize) -> Self {
            let mut tmp = [0u16; 16];
            core::ptr::copy_nonoverlapping(p, tmp.as_mut_ptr(), n);
            Self::bf16_load(tmp.as_ptr())
        }
    }

    /// bf16 → f32 convert sweep body: vector main loop + scalar tail
    /// (decode is exact on both, so the seam is invisible).
    #[inline(always)]
    unsafe fn bf16_decode_v<V: Bf16Lanes>(src: &[u16], dst: &mut [f32]) {
        let main = src.len() - src.len() % V::LANES;
        let (sp, dp) = (src.as_ptr(), dst.as_mut_ptr());
        let mut i = 0;
        while i < main {
            V::bf16_load(sp.add(i)).store(dp.add(i));
            i += V::LANES;
        }
        super::scalar::bf16_decode(&src[main..], &mut dst[main..]);
    }

    /// f32 → bf16 convert sweep body. The scalar tail applies the same
    /// reference rounding, so results are position- and ISA-independent.
    #[inline(always)]
    unsafe fn bf16_encode_v<V: Bf16Lanes>(src: &[f32], dst: &mut [u16]) {
        let main = src.len() - src.len() % V::LANES;
        let (sp, dp) = (src.as_ptr(), dst.as_mut_ptr());
        let mut i = 0;
        while i < main {
            V::load(sp.add(i)).bf16_store(dp.add(i));
            i += V::LANES;
        }
        super::scalar::bf16_encode(&src[main..], &mut dst[main..]);
    }

    /// [`pack_transpose_avx`] reading a bf16 source: the 8×8 register
    /// transpose and store logic are unchanged — only the row loads
    /// decode-and-widen (8 × u16 → 8 × f32) before the `α` multiply,
    /// streaming half the source bytes per block.
    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    unsafe fn pack_transpose_bf16_avx(
        src: *const u16,
        stride: usize,
        rows: usize,
        pad: usize,
        kc: usize,
        dst: *mut f32,
        alpha: f32,
    ) {
        let av = _mm256_set1_ps(alpha);
        let mut i0 = 0;
        while i0 < pad {
            let iw = 8.min(pad - i0); // panel lanes this block stores
            let valid = rows.saturating_sub(i0).min(8); // real source rows
            let mut p0 = 0;
            while p0 < kc {
                let pw = 8.min(kc - p0);
                let mut r = [_mm256_setzero_ps(); 8];
                if pw == 8 {
                    for (i, rv) in r.iter_mut().enumerate().take(valid) {
                        let row = src.add((i0 + i) * stride + p0);
                        *rv = _mm256_mul_ps(F32x8::bf16_load(row).0, av);
                    }
                } else {
                    for (i, rv) in r.iter_mut().enumerate().take(valid) {
                        let row = src.add((i0 + i) * stride + p0);
                        *rv = _mm256_mul_ps(F32x8::bf16_load_partial(row, pw).0, av);
                    }
                }
                // Rows `valid..8` stay zero vectors, so transposed lanes
                // past `rows` carry the panel's zero padding for free.
                let t = transpose8x8(r);
                if iw == 8 {
                    for (p, tv) in t.iter().enumerate().take(pw) {
                        _mm256_storeu_ps(dst.add((p0 + p) * pad + i0), *tv);
                    }
                } else {
                    for (p, &tv) in t.iter().enumerate().take(pw) {
                        F32x8(tv).store_partial(dst.add((p0 + p) * pad + i0), iw);
                    }
                }
                p0 += pw;
            }
            i0 += iw;
        }
    }

    // ---- #[target_feature] wrappers (the only non-inlined SIMD symbols) --

    macro_rules! isa_wrappers {
        ($feat:literal, $v:ty, $mrv:expr, $mod_name:ident) => {
            pub(super) mod $mod_name {
                use super::*;

                #[target_feature(enable = $feat)]
                pub unsafe fn row_max(row: &[f32]) -> f32 {
                    row_max_v::<$v>(row)
                }
                #[target_feature(enable = $feat)]
                pub unsafe fn row_sum(row: &[f32]) -> f32 {
                    row_sum_v::<$v>(row)
                }
                #[target_feature(enable = $feat)]
                pub unsafe fn exp_sub_sweep(row: &mut [f32], m: f32) {
                    exp_sub_sweep_v::<$v>(row, m)
                }
                #[target_feature(enable = $feat)]
                pub unsafe fn gelu_into(src: &[f32], dst: &mut [f32]) {
                    debug_assert_eq!(src.len(), dst.len());
                    gelu_ptr_v::<$v>(src.as_ptr(), dst.as_mut_ptr(), dst.len())
                }
                #[target_feature(enable = $feat)]
                pub unsafe fn gelu_sweep(row: &mut [f32]) {
                    gelu_ptr_v::<$v>(row.as_ptr(), row.as_mut_ptr(), row.len())
                }
                #[target_feature(enable = $feat)]
                pub unsafe fn welford_stats(row: &[f32]) -> (f32, f32) {
                    welford_v::<$v>(row)
                }
                #[target_feature(enable = $feat)]
                pub unsafe fn adamw(
                    p: &mut [f32],
                    m: &mut [f32],
                    v: &mut [f32],
                    g: &[f32],
                    h: &AdamParams,
                ) {
                    adamw_v::<$v>(p, m, v, g, h)
                }
                #[target_feature(enable = $feat)]
                #[allow(clippy::too_many_arguments)]
                pub unsafe fn gemm_micro(
                    kc: usize,
                    ap: &[f32],
                    bp: &[f32],
                    c: *mut f32,
                    ldc: usize,
                    mr: usize,
                    nr: usize,
                    epi: MicroEpi<'_>,
                ) {
                    // Narrow column strips drop to the 8-lane kernel (both
                    // tiers imply AVX2): a 16-lane vector for a `nr ≤ 8`
                    // edge would burn double the FMA width on zero padding.
                    // Reads the same `2·LANES`-interleaved panels — only
                    // the vector width narrows.
                    if nr <= F32x8::LANES && <$v as Vf32>::LANES > F32x8::LANES {
                        return gemm_micro_edge::<F32x8, $mrv>(
                            kc, ap.as_ptr(), bp.as_ptr(), 2 * <$v as Vf32>::LANES,
                            c, ldc, mr, nr, epi,
                        );
                    }
                    gemm_micro_v::<$v, $mrv>(kc, ap.as_ptr(), bp.as_ptr(), c, ldc, mr, nr, epi)
                }
                #[target_feature(enable = $feat)]
                #[allow(clippy::too_many_arguments)]
                pub unsafe fn gemm_micro_spill(
                    kc: usize,
                    ap: &[f32],
                    bp: &[f32],
                    c: *mut f32,
                    ldc: usize,
                    mr: usize,
                    nr: usize,
                    epi: MicroEpi<'_>,
                ) {
                    gemm_micro_spill_v::<$v, $mrv>(kc, ap.as_ptr(), bp.as_ptr(), c, ldc, mr, nr, epi)
                }
                #[target_feature(enable = $feat)]
                #[allow(clippy::too_many_arguments)]
                pub unsafe fn pack_transpose(
                    src: *const f32,
                    stride: usize,
                    rows: usize,
                    pad: usize,
                    kc: usize,
                    dst: *mut f32,
                    alpha: f32,
                ) {
                    // 8-lane AVX blocks on both tiers: the panel interleave
                    // (6/8 rows) caps the useful block height at 8.
                    pack_transpose_avx(src, stride, rows, pad, kc, dst, alpha)
                }
                #[target_feature(enable = $feat)]
                pub unsafe fn bf16_decode(src: &[u16], dst: &mut [f32]) {
                    debug_assert_eq!(src.len(), dst.len());
                    bf16_decode_v::<$v>(src, dst)
                }
                #[target_feature(enable = $feat)]
                pub unsafe fn bf16_encode(src: &[f32], dst: &mut [u16]) {
                    debug_assert_eq!(src.len(), dst.len());
                    bf16_encode_v::<$v>(src, dst)
                }
                #[target_feature(enable = $feat)]
                #[allow(clippy::too_many_arguments)]
                pub unsafe fn pack_transpose_bf16(
                    src: *const u16,
                    stride: usize,
                    rows: usize,
                    pad: usize,
                    kc: usize,
                    dst: *mut f32,
                    alpha: f32,
                ) {
                    pack_transpose_bf16_avx(src, stride, rows, pad, kc, dst, alpha)
                }
            }
        };
    }

    isa_wrappers!("avx2,fma", F32x8, 6, avx2);
    isa_wrappers!("avx512f", F32x16, 8, avx512);
}

// ---------------------------------------------------------------------------
// Dispatched entry points
// ---------------------------------------------------------------------------

macro_rules! dispatch {
    ($isa:expr, $name:ident ( $($arg:expr),* )) => {{
        // Unconditional: `Isa` is freely constructible by safe code, and
        // entering a #[target_feature] kernel the CPU lacks is UB, so the
        // (cheap, atomic-cached) feature check is a soundness guard, not a
        // debug aid.
        assert!($isa.supported(), "ISA {:?} not runnable on this host", $isa);
        match $isa {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `supported()` was just asserted, so the target
            // features this wrapper enables are present on this CPU.
            Isa::Avx512 => unsafe { x86::avx512::$name($($arg),*) },
            #[cfg(target_arch = "x86_64")]
            // SAFETY: as above.
            Isa::Avx2 => unsafe { x86::avx2::$name($($arg),*) },
            #[allow(unreachable_patterns)]
            _ => scalar::$name($($arg),*),
        }
    }};
}

/// Row maximum (softmax's first pass). NaN handling follows the scalar
/// `f32::max` fold only on the Scalar ISA; SIMD paths use x86 max
/// semantics — rows with NaN are unspecified (softmax is garbage on NaN
/// input either way).
pub fn row_max(row: &[f32]) -> f32 {
    row_max_isa(active_isa(), row)
}

/// [`row_max`] on an explicit ISA (must be in [`Isa::available`]).
pub fn row_max_isa(isa: Isa, row: &[f32]) -> f32 {
    dispatch!(isa, row_max(row))
}

/// Row sum (softmax's normalizer pass). SIMD lanes fold in a fixed tree
/// order, so the result differs from the scalar left-to-right sum by a few
/// ulps but is identical for a given ISA at any thread count.
pub fn row_sum(row: &[f32]) -> f32 {
    row_sum_isa(active_isa(), row)
}

/// [`row_sum`] on an explicit ISA.
pub fn row_sum_isa(isa: Isa, row: &[f32]) -> f32 {
    dispatch!(isa, row_sum(row))
}

/// `x ← exp_fast(x − m)` over a row: the softmax / flash-attention
/// exponential sweep. Per-element results are identical on every ISA (same
/// IEEE op sequence per lane).
pub fn exp_sub_sweep(row: &mut [f32], m: f32) {
    exp_sub_sweep_isa(active_isa(), row, m)
}

/// [`exp_sub_sweep`] on an explicit ISA.
pub fn exp_sub_sweep_isa(isa: Isa, row: &mut [f32], m: f32) {
    dispatch!(isa, exp_sub_sweep(row, m))
}

/// `dst ← gelu(src)` (tanh approximation), lane-parallel.
pub fn gelu_into(src: &[f32], dst: &mut [f32]) {
    gelu_into_isa(active_isa(), src, dst)
}

/// [`gelu_into`] on an explicit ISA.
pub fn gelu_into_isa(isa: Isa, src: &[f32], dst: &mut [f32]) {
    assert_eq!(src.len(), dst.len(), "gelu_into length mismatch");
    dispatch!(isa, gelu_into(src, dst))
}

/// In-place GELU sweep.
pub fn gelu_sweep(row: &mut [f32]) {
    gelu_sweep_isa(active_isa(), row)
}

/// [`gelu_sweep`] on an explicit ISA.
pub fn gelu_sweep_isa(isa: Isa, row: &mut [f32]) {
    dispatch!(isa, gelu_sweep(row))
}

/// Single-sweep `(mean, variance)` of one row via chunked Welford
/// ([`WELFORD_CHUNK`]-element chunks, Chan combine). The in-chunk sums are
/// lane-parallel on SIMD ISAs; the combine is identical everywhere.
pub fn welford_stats(row: &[f32]) -> (f32, f32) {
    welford_stats_isa(active_isa(), row)
}

/// [`welford_stats`] on an explicit ISA.
pub fn welford_stats_isa(isa: Isa, row: &[f32]) -> (f32, f32) {
    dispatch!(isa, welford_stats(row))
}

/// Hyper-parameters for one fused AdamW sweep step (bias corrections
/// precomputed by the optimizer).
#[derive(Clone, Copy, Debug)]
pub struct AdamParams {
    pub beta1: f32,
    pub beta2: f32,
    /// `1 − β1^t`.
    pub bias_c1: f32,
    /// `1 − β2^t`.
    pub bias_c2: f32,
    pub lr: f32,
    pub eps: f32,
    /// Decoupled weight decay (0 for exempt parameters).
    pub weight_decay: f32,
}

/// Fused in-place AdamW update over one parameter: moments and parameter
/// mutate their own buffers in a single lane-parallel sweep. Per-element
/// results match the scalar path (same IEEE op sequence per lane).
pub fn adamw_sweep(p: &mut [f32], m: &mut [f32], v: &mut [f32], g: &[f32], h: &AdamParams) {
    adamw_sweep_isa(active_isa(), p, m, v, g, h)
}

/// [`adamw_sweep`] on an explicit ISA.
pub fn adamw_sweep_isa(
    isa: Isa,
    p: &mut [f32],
    m: &mut [f32],
    v: &mut [f32],
    g: &[f32],
    h: &AdamParams,
) {
    assert!(
        p.len() == m.len() && p.len() == v.len() && p.len() == g.len(),
        "adamw_sweep length mismatch"
    );
    dispatch!(isa, adamw(p, m, v, g, h))
}

/// The GEMM register micro-kernel: `C[0..mr, 0..nr] (epi)= Ap·Bp` over
/// packed micro-panels (`ap` MR-interleaved, `bp` NR-interleaved for this
/// ISA's tile shape, both zero-padded to full MR/NR).
///
/// # Safety
///
/// `c` must point at an exclusive `mr × nr` window with row stride `ldc`
/// elements, valid for reads and writes; `ap`/`bp` must hold at least
/// `kc·MR` / `kc·NR` packed elements; `isa` must be runnable on this host
/// (obtain it from [`active_isa`] / [`Isa::available`]).
#[allow(clippy::too_many_arguments)]
pub(crate) unsafe fn gemm_microkernel(
    isa: Isa,
    kc: usize,
    ap: &[f32],
    bp: &[f32],
    c: *mut f32,
    ldc: usize,
    mr: usize,
    nr: usize,
    epi: MicroEpi<'_>,
) {
    dispatch!(isa, gemm_micro(kc, ap, bp, c, ldc, mr, nr, epi))
}

/// The pre-masked-tail micro-kernel (edge tiles spill to a scratch array
/// and store scalar), retained as the baseline for the `gemm_ragged_*`
/// BENCH entries and as the parity reference for the masked path. Same
/// contract as [`gemm_microkernel`].
///
/// # Safety
/// As [`gemm_microkernel`].
#[allow(clippy::too_many_arguments)]
pub(crate) unsafe fn gemm_microkernel_spill(
    isa: Isa,
    kc: usize,
    ap: &[f32],
    bp: &[f32],
    c: *mut f32,
    ldc: usize,
    mr: usize,
    nr: usize,
    epi: MicroEpi<'_>,
) {
    dispatch!(isa, gemm_micro_spill(kc, ap, bp, c, ldc, mr, nr, epi))
}

/// Transpose-gather panel pack:
/// `dst[p·pad + i] = α · src[i·stride + p]` for `i < rows`, `p < kc`, with
/// panel rows `rows..pad` zero-filled. SIMD tiers run 8×8 in-register
/// shuffle transposes over contiguous source runs; the scalar tier keeps
/// the gather loop. All tiers are bitwise identical (one `α·x` multiply
/// per element on every path).
///
/// # Safety
/// `src` must be readable at `i·stride + p` for all `i < rows`, `p < kc`;
/// `dst` must be writable for `pad·kc` elements; `isa` must be runnable on
/// this host.
#[allow(clippy::too_many_arguments)]
pub(crate) unsafe fn pack_transpose(
    isa: Isa,
    src: *const f32,
    stride: usize,
    rows: usize,
    pad: usize,
    kc: usize,
    dst: *mut f32,
    alpha: f32,
) {
    dispatch!(isa, pack_transpose(src, stride, rows, pad, kc, dst, alpha))
}

/// `dst[i] ← f32(src[i])` bf16 decode sweep — exact on every ISA (a
/// 16-bit left shift per element), so all tiers agree bitwise.
pub fn bf16_to_f32_sweep(src: &[u16], dst: &mut [f32]) {
    bf16_to_f32_sweep_isa(active_isa(), src, dst)
}

/// [`bf16_to_f32_sweep`] on an explicit ISA.
pub fn bf16_to_f32_sweep_isa(isa: Isa, src: &[u16], dst: &mut [f32]) {
    assert_eq!(src.len(), dst.len(), "bf16_to_f32_sweep length mismatch");
    dispatch!(isa, bf16_decode(src, dst))
}

/// `dst[i] ← bf16(src[i])` encode sweep: round-to-nearest-even with NaN
/// quieting, bitwise identical to [`crate::dtype::f32_to_bf16`] on every
/// ISA (parity-tested), so a stored bf16 tensor never depends on which
/// tier encoded it.
pub fn f32_to_bf16_sweep(src: &[f32], dst: &mut [u16]) {
    f32_to_bf16_sweep_isa(active_isa(), src, dst)
}

/// [`f32_to_bf16_sweep`] on an explicit ISA.
pub fn f32_to_bf16_sweep_isa(isa: Isa, src: &[f32], dst: &mut [u16]) {
    assert_eq!(src.len(), dst.len(), "f32_to_bf16_sweep length mismatch");
    dispatch!(isa, bf16_encode(src, dst))
}

/// [`pack_transpose`] reading a bf16 source panel: the (exact) decode is
/// fused into the gather/transpose, so bf16-stored operands stream half
/// the bytes into the same f32 micro-panels — bitwise equal to decoding
/// the operand to f32 up front and packing that.
///
/// # Safety
/// As [`pack_transpose`], with `src` counted in u16 elements.
#[allow(clippy::too_many_arguments)]
pub(crate) unsafe fn pack_transpose_bf16(
    isa: Isa,
    src: *const u16,
    stride: usize,
    rows: usize,
    pad: usize,
    kc: usize,
    dst: *mut f32,
    alpha: f32,
) {
    dispatch!(isa, pack_transpose_bf16(src, stride, rows, pad, kc, dst, alpha))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    /// Ulp distance between two finite f32 (0 when bitwise equal or both
    /// NaN).
    fn ulps(a: f32, b: f32) -> u64 {
        if a.is_nan() && b.is_nan() {
            return 0;
        }
        fn key(x: f32) -> i64 {
            let b = x.to_bits();
            if b & 0x8000_0000 != 0 {
                -((b & 0x7fff_ffff) as i64)
            } else {
                b as i64
            }
        }
        (key(a) - key(b)).unsigned_abs()
    }

    fn rand_vec(n: usize, scale: f32, seed: u64) -> Vec<f32> {
        let mut rng = Rng::new(seed);
        let mut v = vec![0.0f32; n];
        rng.fill_normal(&mut v, scale);
        v
    }

    #[test]
    fn active_isa_is_available() {
        assert!(active_isa().supported());
        assert!(Isa::available().ends_with(&[Isa::Scalar]));
    }

    #[test]
    fn elementwise_sweeps_match_scalar_within_ulps() {
        // Lengths off the lane multiple exercise every tail path.
        for &len in &[1usize, 7, 8, 15, 16, 17, 33, 130] {
            let src = rand_vec(len, 3.0, len as u64);
            for isa in Isa::available() {
                // exp(x − m)
                let m = 1.25f32;
                let mut got = src.clone();
                exp_sub_sweep_isa(isa, &mut got, m);
                for (&x, &y) in got.iter().zip(&src) {
                    let want = exp_fast(y - m);
                    assert!(
                        ulps(x, want) <= 2,
                        "{:?} exp len {len}: {x} vs {want}",
                        isa.name()
                    );
                }
                // gelu into + in place
                let mut dst = vec![0.0f32; len];
                gelu_into_isa(isa, &src, &mut dst);
                let mut inplace = src.clone();
                gelu_sweep_isa(isa, &mut inplace);
                for ((&g1, &g2), &y) in dst.iter().zip(&inplace).zip(&src) {
                    let want = gelu_scalar(y);
                    assert!(ulps(g1, want) <= 2, "{:?} gelu: {g1} vs {want}", isa.name());
                    assert_eq!(g1.to_bits(), g2.to_bits(), "into vs in-place");
                }
            }
        }
    }

    #[test]
    fn exp_sweep_handles_clamped_tails() {
        // The boundary values repeat past the widest lane count (16) so
        // the *vector* clamp/exp2i path processes them, not just the
        // scalar tail.
        let boundary = [-1000.0f32, 1000.0, 0.0, -87.0, 88.0, -126.0, 127.0, 0.5];
        let src: Vec<f32> = boundary.iter().cycle().take(3 * boundary.len()).copied().collect();
        for isa in Isa::available() {
            let mut row = src.clone();
            exp_sub_sweep_isa(isa, &mut row, 0.0);
            assert!(row[0] > 0.0 && row[0] < 1e-37, "{:?}", isa.name());
            assert!(row[1].is_finite());
            assert_eq!(row[2], 1.0);
            for (j, &x) in row.iter().enumerate() {
                assert!(
                    ulps(x, exp_fast(src[j])) <= 2,
                    "{:?} elem {j} ({})",
                    isa.name(),
                    src[j]
                );
            }
        }
    }

    #[test]
    fn reductions_match_scalar_within_tolerance() {
        for &len in &[1usize, 5, 16, 31, 64, 130, 301] {
            let row = rand_vec(len, 2.0, 7 + len as u64);
            let want_max = scalar::row_max(&row);
            let want_sum = scalar::row_sum(&row);
            for isa in Isa::available() {
                // max is an exact op: any fold order gives the same value.
                assert_eq!(row_max_isa(isa, &row), want_max, "{:?} len {len}", isa.name());
                let sum = row_sum_isa(isa, &row);
                let tol = 1e-5 * (len as f32).sqrt() * 2.0 + 1e-6;
                assert!(
                    (sum - want_sum).abs() <= tol,
                    "{:?} len {len}: {sum} vs {want_sum}",
                    isa.name()
                );
            }
        }
    }

    #[test]
    fn welford_matches_scalar_and_naive() {
        for &len in &[1usize, 3, 64, 65, 130, 301] {
            // Offset mean exercises the cancellation robustness.
            let row: Vec<f32> = rand_vec(len, 1.0, 11 + len as u64)
                .into_iter()
                .map(|v| v + 100.0)
                .collect();
            let (smu, svar) = scalar::welford_stats(&row);
            for isa in Isa::available() {
                let (mu, var) = welford_stats_isa(isa, &row);
                assert!((mu - smu).abs() < 1e-3, "{:?} len {len}: {mu} vs {smu}", isa.name());
                assert!(
                    (var - svar).abs() <= 1e-3 * svar.max(1.0),
                    "{:?} len {len}: {var} vs {svar}",
                    isa.name()
                );
            }
        }
    }

    #[test]
    fn adamw_matches_scalar_within_ulps() {
        let h = AdamParams {
            beta1: 0.9,
            beta2: 0.999,
            bias_c1: 0.1,
            bias_c2: 0.001,
            lr: 1e-3,
            eps: 1e-8,
            weight_decay: 0.01,
        };
        for &len in &[1usize, 15, 16, 17, 130] {
            let p0 = rand_vec(len, 1.0, 21);
            let m0 = rand_vec(len, 0.1, 22);
            let v0: Vec<f32> = rand_vec(len, 0.1, 23).iter().map(|x| x * x).collect();
            let g = rand_vec(len, 1.0, 24);
            let (mut ps, mut ms, mut vs) = (p0.clone(), m0.clone(), v0.clone());
            scalar::adamw(&mut ps, &mut ms, &mut vs, &g, &h);
            for isa in Isa::available() {
                let (mut p, mut m, mut v) = (p0.clone(), m0.clone(), v0.clone());
                adamw_sweep_isa(isa, &mut p, &mut m, &mut v, &g, &h);
                for i in 0..len {
                    assert!(
                        ulps(p[i], ps[i]) <= 2 && ulps(m[i], ms[i]) <= 2 && ulps(v[i], vs[i]) <= 2,
                        "{:?} len {len} i {i}: {} vs {}",
                        isa.name(),
                        p[i],
                        ps[i]
                    );
                }
            }
        }
    }

    #[test]
    fn masked_edge_store_bitwise_matches_spill_kernel() {
        // The masked-tail kernels must reproduce the old scratch-spill
        // edge path bit for bit: per output element both accumulate
        // strictly k-major and apply the epilogue with the same op order.
        for isa in Isa::available() {
            let (mrv, nrv) = gemm_tile_shape(isa);
            let lanes = nrv / 2;
            for &kc in &[1usize, 7, 65] {
                for &mr in &[1usize, 2, mrv - 1, mrv] {
                    for &nr in &[1usize, lanes - 1, lanes, lanes + 1, nrv - 1, nrv] {
                        let ap = rand_vec(kc * mrv, 1.0, (kc * 13 + mr) as u64);
                        let bp = rand_vec(kc * nrv, 1.0, (kc * 17 + nr) as u64);
                        let bias = rand_vec(nr, 1.0, 99);
                        for (ei, epi) in [
                            MicroEpi::Add,
                            MicroEpi::AddBias(&bias),
                            MicroEpi::Assign,
                        ]
                        .into_iter()
                        .enumerate()
                        {
                            let init = rand_vec(mr * nr, 1.0, 7 + ei as u64);
                            let mut masked = init.clone();
                            let mut spill = init.clone();
                            unsafe {
                                gemm_microkernel(
                                    isa, kc, &ap, &bp, masked.as_mut_ptr(), nr, mr, nr, epi,
                                );
                                gemm_microkernel_spill(
                                    isa, kc, &ap, &bp, spill.as_mut_ptr(), nr, mr, nr, epi,
                                );
                            }
                            for (j, (x, y)) in masked.iter().zip(&spill).enumerate() {
                                assert_eq!(
                                    x.to_bits(),
                                    y.to_bits(),
                                    "{} kc={kc} mr={mr} nr={nr} epi#{ei} elem {j}: {x} vs {y}",
                                    isa.name()
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn masked_edge_store_never_touches_past_nr() {
        // Guard lanes beyond the tile's columns must stay untouched — the
        // whole point of the masked store over a full-width blend.
        for isa in Isa::available() {
            let (mrv, nrv) = gemm_tile_shape(isa);
            let (kc, mr, nr) = (3usize, mrv, nrv - 3);
            let ap = rand_vec(kc * mrv, 1.0, 1);
            let bp = rand_vec(kc * nrv, 1.0, 2);
            // ldc == nrv leaves 3 guard columns per row.
            let mut c = vec![f32::NAN; mr * nrv];
            for r in c.chunks_mut(nrv) {
                r[..nr].fill(0.0);
            }
            unsafe {
                gemm_microkernel(isa, kc, &ap, &bp, c.as_mut_ptr(), nrv, mr, nr, MicroEpi::Add);
            }
            for (i, row) in c.chunks(nrv).enumerate() {
                assert!(
                    row[..nr].iter().all(|x| x.is_finite()),
                    "{} row {i} tile columns written",
                    isa.name()
                );
                assert!(
                    row[nr..].iter().all(|x| x.is_nan()),
                    "{} row {i} guard columns clobbered",
                    isa.name()
                );
            }
        }
    }

    #[test]
    fn pack_transpose_bitwise_matches_scalar() {
        // The SIMD transpose pack must equal the scalar gather loop bit
        // for bit, including the zero padding, across block-edge shapes.
        for isa in Isa::available() {
            for &(rows, pad) in &[(1usize, 6usize), (5, 6), (6, 6), (7, 8), (8, 8), (13, 16), (16, 16), (31, 32)] {
                for &kc in &[1usize, 7, 8, 9, 64, 65] {
                    for &alpha in &[1.0f32, 0.125] {
                        let stride = kc + 3; // source wider than the block
                        let src = rand_vec(rows * stride, 1.0, (rows * 31 + kc) as u64);
                        let mut want = vec![f32::NAN; pad * kc];
                        let mut got = vec![f32::NAN; pad * kc];
                        unsafe {
                            scalar::pack_transpose(
                                src.as_ptr(), stride, rows, pad, kc, want.as_mut_ptr(), alpha,
                            );
                            pack_transpose(
                                isa, src.as_ptr(), stride, rows, pad, kc, got.as_mut_ptr(), alpha,
                            );
                        }
                        for (j, (x, y)) in got.iter().zip(&want).enumerate() {
                            assert_eq!(
                                x.to_bits(),
                                y.to_bits(),
                                "{} rows={rows} pad={pad} kc={kc} α={alpha} elem {j}",
                                isa.name()
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn bf16_convert_sweeps_match_scalar_bitwise() {
        use crate::dtype::{bf16_to_f32, f32_to_bf16};
        for &len in &[1usize, 7, 8, 15, 16, 17, 33, 130] {
            let mut src = rand_vec(len, 10.0, 40 + len as u64);
            // Salt in the hard cases: specials, exact ties, subnormals, a
            // signalling-style NaN whose payload sits in the dropped half.
            let specials = [
                f32::NAN,
                f32::INFINITY,
                f32::NEG_INFINITY,
                f32::MAX,
                f32::MIN,
                -0.0,
                0.0,
                f32::from_bits(0x3F80_8000),
                f32::from_bits(0x3F81_8000),
                f32::from_bits(0x0000_0001),
                f32::from_bits(0x7F80_0001),
            ];
            for (v, &s) in src.iter_mut().zip(specials.iter()) {
                *v = s;
            }
            let mut want = vec![0u16; len];
            scalar::bf16_encode(&src, &mut want);
            for (&w, &s) in want.iter().zip(&src) {
                assert_eq!(w, f32_to_bf16(s), "scalar sweep vs reference");
            }
            for isa in Isa::available() {
                let mut got = vec![0u16; len];
                f32_to_bf16_sweep_isa(isa, &src, &mut got);
                assert_eq!(got, want, "{:?} encode len {len}", isa.name());
                let mut dec = vec![0.0f32; len];
                bf16_to_f32_sweep_isa(isa, &got, &mut dec);
                for (j, (&d, &g)) in dec.iter().zip(&got).enumerate() {
                    assert_eq!(
                        d.to_bits(),
                        bf16_to_f32(g).to_bits(),
                        "{:?} decode len {len} elem {j}",
                        isa.name()
                    );
                }
            }
        }
    }

    #[test]
    fn pack_transpose_bf16_bitwise_matches_scalar() {
        // Same contract as the f32 pack: the SIMD decode-and-gather must
        // equal the scalar loop bit for bit, zero padding included.
        for isa in Isa::available() {
            for &(rows, pad) in &[(1usize, 6usize), (5, 6), (7, 8), (8, 8), (13, 16), (31, 32)] {
                for &kc in &[1usize, 7, 8, 9, 65] {
                    for &alpha in &[1.0f32, 0.125] {
                        let stride = kc + 3; // source wider than the block
                        let f = rand_vec(rows * stride, 1.0, (rows * 41 + kc) as u64);
                        let src: Vec<u16> =
                            f.iter().map(|&x| crate::dtype::f32_to_bf16(x)).collect();
                        let mut want = vec![f32::NAN; pad * kc];
                        let mut got = vec![f32::NAN; pad * kc];
                        unsafe {
                            scalar::pack_transpose_bf16(
                                src.as_ptr(), stride, rows, pad, kc, want.as_mut_ptr(), alpha,
                            );
                            pack_transpose_bf16(
                                isa, src.as_ptr(), stride, rows, pad, kc, got.as_mut_ptr(), alpha,
                            );
                        }
                        for (j, (x, y)) in got.iter().zip(&want).enumerate() {
                            assert_eq!(
                                x.to_bits(),
                                y.to_bits(),
                                "{} rows={rows} pad={pad} kc={kc} α={alpha} elem {j}",
                                isa.name()
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn micro_kernel_isas_agree_on_packed_panels() {
        // Drive the micro-kernel directly on synthetic packed panels for
        // every (mr, nr) edge of each ISA, against an f64 reference.
        for isa in Isa::available() {
            let (mrv, nrv) = gemm_tile_shape(isa);
            for &kc in &[1usize, 2, 3, 65] {
                for &mr in &[1usize, mrv - 1, mrv] {
                    for &nr in &[1usize, nrv - 1, nrv] {
                        let ap = rand_vec(kc * mrv, 1.0, (kc * 31 + mr) as u64);
                        let bp = rand_vec(kc * nrv, 1.0, (kc * 37 + nr) as u64);
                        let mut c = vec![0.5f32; mr * nr];
                        unsafe {
                            gemm_microkernel(
                                isa,
                                kc,
                                &ap,
                                &bp,
                                c.as_mut_ptr(),
                                nr,
                                mr,
                                nr,
                                MicroEpi::Add,
                            );
                        }
                        for i in 0..mr {
                            for j in 0..nr {
                                let mut want = 0.5f64;
                                for p in 0..kc {
                                    want += ap[p * mrv + i] as f64 * bp[p * nrv + j] as f64;
                                }
                                let got = c[i * nr + j];
                                assert!(
                                    (got as f64 - want).abs() < 1e-4 * kc as f64,
                                    "{:?} kc={kc} mr={mr} nr={nr} ({i},{j}): {got} vs {want}",
                                    isa.name()
                                );
                            }
                        }
                    }
                }
            }
        }
    }
}
