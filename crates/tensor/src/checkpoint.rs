//! Checkpointing: serialize a [`ParamStore`] to a compact self-describing
//! binary format and restore it by name.
//!
//! Format (little-endian):
//! ```text
//! magic "DCHK" | version u32 | count u32
//! per parameter: name_len u32 | name bytes | ndim u32 | dims u64... | f32 data
//! ```
//! Loading matches by *name* (order-independent) and verifies shapes, so a
//! checkpoint survives refactors that reorder module construction. Ranks of
//! a distributed run each save their own shard-local store.

use std::io::{self, Read, Write};
use std::path::Path;

use crate::param::ParamStore;
use crate::shape::Shape;
use crate::tensor::Tensor;

const MAGIC: &[u8; 4] = b"DCHK";
const VERSION: u32 = 1;

fn write_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_u64(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Serialize every parameter of `store` to `w`.
pub fn save_store(store: &ParamStore, w: &mut impl Write) -> io::Result<()> {
    w.write_all(MAGIC)?;
    write_u32(w, VERSION)?;
    write_u32(w, store.len() as u32)?;
    for (_, name, value) in store.iter() {
        write_u32(w, name.len() as u32)?;
        w.write_all(name.as_bytes())?;
        write_u32(w, value.ndim() as u32)?;
        for &d in value.dims() {
            write_u64(w, d as u64)?;
        }
        for &x in value.data() {
            w.write_all(&x.to_le_bytes())?;
        }
    }
    Ok(())
}

/// One deserialized entry.
pub struct CheckpointEntry {
    pub name: String,
    pub value: Tensor,
}

/// Read all entries from `r`.
pub fn read_entries(r: &mut impl Read) -> io::Result<Vec<CheckpointEntry>> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
    }
    let version = read_u32(r)?;
    if version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported checkpoint version {version}"),
        ));
    }
    let count = read_u32(r)? as usize;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let name_len = read_u32(r)? as usize;
        let mut name = vec![0u8; name_len];
        r.read_exact(&mut name)?;
        let name = String::from_utf8(name)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        let ndim = read_u32(r)? as usize;
        let mut dims = Vec::with_capacity(ndim);
        for _ in 0..ndim {
            dims.push(read_u64(r)? as usize);
        }
        let numel: usize = dims.iter().product();
        let mut data = vec![0f32; numel];
        for x in data.iter_mut() {
            let mut b = [0u8; 4];
            r.read_exact(&mut b)?;
            *x = f32::from_le_bytes(b);
        }
        out.push(CheckpointEntry {
            name,
            value: Tensor::from_vec(data, Shape::new(&dims)),
        });
    }
    Ok(out)
}

/// Restore parameters into `store` by name. Returns the number restored.
/// Errors if a named parameter has a mismatched shape; entries with no
/// matching parameter are ignored (forward compatibility), as are store
/// parameters absent from the checkpoint.
pub fn load_store(store: &mut ParamStore, r: &mut impl Read) -> io::Result<usize> {
    let entries = read_entries(r)?;
    let mut restored = 0;
    for entry in entries {
        let id = store
            .ids()
            .find(|&id| store.name(id) == entry.name);
        if let Some(id) = id {
            if store.get(id).dims() != entry.value.dims() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "shape mismatch for {}: checkpoint {:?} vs store {:?}",
                        entry.name,
                        entry.value.dims(),
                        store.get(id).dims()
                    ),
                ));
            }
            store.set(id, entry.value);
            restored += 1;
        }
    }
    Ok(restored)
}

/// Save to a file path.
pub fn save_to_file(store: &ParamStore, path: impl AsRef<Path>) -> io::Result<()> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    save_store(store, &mut f)
}

/// Load from a file path.
pub fn load_from_file(store: &mut ParamStore, path: impl AsRef<Path>) -> io::Result<usize> {
    let mut f = std::io::BufReader::new(std::fs::File::open(path)?);
    load_store(store, &mut f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn store_with(names: &[(&str, Vec<usize>)]) -> ParamStore {
        let mut s = ParamStore::new();
        let mut rng = Rng::new(3);
        for (name, dims) in names {
            s.add(*name, Tensor::randn(Shape::new(dims), 1.0, &mut rng));
        }
        s
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let store = store_with(&[("a.w", vec![4, 3]), ("a.b", vec![3]), ("ln.gamma", vec![8])]);
        let mut buf = Vec::new();
        save_store(&store, &mut buf).unwrap();

        let mut fresh = store_with(&[("a.w", vec![4, 3]), ("a.b", vec![3]), ("ln.gamma", vec![8])]);
        // perturb, then restore
        let id = fresh.ids().next().unwrap();
        fresh.set(id, Tensor::zeros([4, 3]));
        let n = load_store(&mut fresh, &mut buf.as_slice()).unwrap();
        assert_eq!(n, 3);
        for ((_, _, a), (_, _, b)) in store.iter().zip(fresh.iter()) {
            assert_eq!(a.to_vec(), b.to_vec());
        }
    }

    #[test]
    fn load_matches_by_name_not_order() {
        let store = store_with(&[("x", vec![2]), ("y", vec![3])]);
        let mut buf = Vec::new();
        save_store(&store, &mut buf).unwrap();
        // build target with reversed registration order
        let mut target = store_with(&[("y", vec![3]), ("x", vec![2])]);
        let n = load_store(&mut target, &mut buf.as_slice()).unwrap();
        assert_eq!(n, 2);
        let xid = target.ids().find(|&i| target.name(i) == "x").unwrap();
        let want = store.ids().find(|&i| store.name(i) == "x").unwrap();
        assert_eq!(target.get(xid).to_vec(), store.get(want).to_vec());
    }

    #[test]
    fn shape_mismatch_rejected() {
        let store = store_with(&[("w", vec![4])]);
        let mut buf = Vec::new();
        save_store(&store, &mut buf).unwrap();
        let mut target = store_with(&[("w", vec![5])]);
        assert!(load_store(&mut target, &mut buf.as_slice()).is_err());
    }

    #[test]
    fn unknown_entries_ignored() {
        let store = store_with(&[("old", vec![2]), ("shared", vec![3])]);
        let mut buf = Vec::new();
        save_store(&store, &mut buf).unwrap();
        let mut target = store_with(&[("shared", vec![3]), ("new", vec![4])]);
        let n = load_store(&mut target, &mut buf.as_slice()).unwrap();
        assert_eq!(n, 1);
    }

    #[test]
    fn corrupt_magic_detected() {
        let mut buf = b"NOPE".to_vec();
        buf.extend_from_slice(&[0u8; 16]);
        let mut s = ParamStore::new();
        assert!(load_store(&mut s, &mut buf.as_slice()).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let store = store_with(&[("w", vec![6, 2])]);
        let path = std::env::temp_dir().join("dchag_ckpt_test.bin");
        save_to_file(&store, &path).unwrap();
        let mut fresh = store_with(&[("w", vec![6, 2])]);
        let id = fresh.ids().next().unwrap();
        fresh.set(id, Tensor::zeros([6, 2]));
        let n = load_from_file(&mut fresh, &path).unwrap();
        assert_eq!(n, 1);
        let _ = std::fs::remove_file(&path);
        let want = store.ids().next().unwrap();
        assert_eq!(fresh.get(id).to_vec(), store.get(want).to_vec());
    }
}
