//! Layer normalization, forward and backward.
//!
//! The forward pass computes per-row statistics in a single sweep using a
//! chunked Welford scheme: each 64-element chunk accumulates a plain
//! lane-parallel sum and sum-of-squares (the runtime-dispatched SIMD sweep
//! in [`crate::simd::welford_stats`]), and chunk statistics are folded into
//! the running `(mean, M2)` pair with Chan's parallel-combine update. This
//! keeps Welford's numerical robustness (no catastrophic cancellation for
//! large means) while the inner loops stay branch-free and explicitly
//! vectorized, and it reads each row once instead of twice.
//!
//! Rows are independent, so both passes parallelize over row bands; the
//! backward's `dγ`/`dβ` cross-row reductions are computed as per-band
//! partials and folded serially at the end.

use rayon::prelude::*;

use crate::par::{self, PAR_NUMEL};
use crate::tensor::Tensor;

pub const LN_EPS: f32 = 1e-5;

/// Saved statistics from the forward pass, needed by the backward pass.
pub struct LayerNormCtx {
    /// Per-row mean, length = rows.
    pub mean: Vec<f32>,
    /// Per-row reciprocal std, length = rows.
    pub rstd: Vec<f32>,
}

/// Single-sweep `(mean, variance)` of one row via chunked Welford — the
/// runtime-dispatched lane-parallel sweep in the SIMD core.
fn row_stats(row: &[f32]) -> (f32, f32) {
    crate::simd::welford_stats(row)
}

/// LayerNorm over the last axis: `y = (x − μ)/σ · γ + β`.
pub fn layernorm(x: &Tensor, gamma: &Tensor, beta: &Tensor) -> (Tensor, LayerNormCtx) {
    let n = x.shape().last();
    assert_eq!(gamma.numel(), n, "gamma len");
    assert_eq!(beta.numel(), n, "beta len");
    let rows = x.shape().rows();
    let (g, b) = (gamma.data(), beta.data());
    let mut out = vec![0.0f32; x.numel()];
    // (mean, rstd) interleaved so one parallel sweep fills both.
    let mut stats = vec![0.0f32; rows * 2];

    if n > 0 {
        par::for_each_row_zip(&mut out, n, &mut stats, 2, |r, o_row, stat| {
            let x_row = &x.data()[r * n..(r + 1) * n];
            let (mu, var) = row_stats(x_row);
            let rs = 1.0 / (var + LN_EPS).sqrt();
            stat[0] = mu;
            stat[1] = rs;
            for (j, (o, &xv)) in o_row.iter_mut().zip(x_row).enumerate() {
                *o = ((xv - mu) * rs).mul_add(g[j], b[j]);
            }
        });
    }

    let mean = stats.iter().step_by(2).copied().collect();
    let rstd = stats.iter().skip(1).step_by(2).copied().collect();
    (
        Tensor::from_vec(out, x.shape().clone()),
        LayerNormCtx { mean, rstd },
    )
}

/// Backward of LayerNorm. Returns `(dx, dgamma, dbeta)`.
pub fn layernorm_backward(
    x: &Tensor,
    gamma: &Tensor,
    ctx: &LayerNormCtx,
    dy: &Tensor,
) -> (Tensor, Tensor, Tensor) {
    let n = x.shape().last();
    let rows = x.shape().rows();
    let g = gamma.data();
    let mut dx = vec![0.0f32; x.numel()];

    // dx rows are independent.
    let dx_row = |r: usize, dx_row: &mut [f32]| {
        let x_row = &x.data()[r * n..(r + 1) * n];
        let dy_row = &dy.data()[r * n..(r + 1) * n];
        let (mu, rs) = (ctx.mean[r], ctx.rstd[r]);
        // xhat = (x − μ)·rs ; dy_g = dy ⊙ γ
        // dx = rs·(dy_g − mean(dy_g) − xhat·mean(dy_g ⊙ xhat))
        let mut sum_dyg = 0.0f32;
        let mut sum_dyg_xhat = 0.0f32;
        for j in 0..n {
            let xhat = (x_row[j] - mu) * rs;
            let dyg = dy_row[j] * g[j];
            sum_dyg += dyg;
            sum_dyg_xhat = dyg.mul_add(xhat, sum_dyg_xhat);
        }
        let m1 = sum_dyg / n as f32;
        let m2 = sum_dyg_xhat / n as f32;
        for j in 0..n {
            let xhat = (x_row[j] - mu) * rs;
            let dyg = dy_row[j] * g[j];
            dx_row[j] = rs * (dyg - m1 - xhat * m2);
        }
    };

    // dγ/dβ reduce across rows: per-band partials, folded at the end.
    let band_partials = |r0: usize, r1: usize| {
        let mut dgamma = vec![0.0f32; n];
        let mut dbeta = vec![0.0f32; n];
        for r in r0..r1 {
            let x_row = &x.data()[r * n..(r + 1) * n];
            let dy_row = &dy.data()[r * n..(r + 1) * n];
            let (mu, rs) = (ctx.mean[r], ctx.rstd[r]);
            for j in 0..n {
                let xhat = (x_row[j] - mu) * rs;
                dgamma[j] = dy_row[j].mul_add(xhat, dgamma[j]);
                dbeta[j] += dy_row[j];
            }
        }
        (dgamma, dbeta)
    };

    let (dgamma, dbeta) = if x.numel() >= PAR_NUMEL && rows > 1 {
        par::for_each_row_indexed(&mut dx, n, dx_row);
        // Band count depends on the problem size only, never the thread
        // count, so the dγ/dβ partial-sum grouping — and the f32 result,
        // bit for bit — is identical on every machine.
        const BAND_ROWS: usize = 64;
        const MAX_BANDS: usize = 32;
        let bands = rows.div_ceil(BAND_ROWS).min(MAX_BANDS);
        let per = rows.div_ceil(bands);
        let partials: Vec<(Vec<f32>, Vec<f32>)> = (0..bands)
            .into_par_iter()
            .map(|t| band_partials(t * per, ((t + 1) * per).min(rows)))
            .collect();
        let mut dgamma = vec![0.0f32; n];
        let mut dbeta = vec![0.0f32; n];
        for (pg, pb) in partials {
            for (d, p) in dgamma.iter_mut().zip(&pg) {
                *d += p;
            }
            for (d, p) in dbeta.iter_mut().zip(&pb) {
                *d += p;
            }
        }
        (dgamma, dbeta)
    } else {
        for (r, row) in dx.chunks_mut(n).enumerate() {
            dx_row(r, row);
        }
        band_partials(0, rows)
    };

    (
        Tensor::from_vec(dx, x.shape().clone()),
        Tensor::from_vec(dgamma, [n]),
        Tensor::from_vec(dbeta, [n]),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn normalized_rows_have_zero_mean_unit_var() {
        let mut rng = Rng::new(1);
        let x = Tensor::randn([5, 32], 2.0, &mut rng);
        let g = Tensor::ones([32]);
        let b = Tensor::zeros([32]);
        let (y, _) = layernorm(&x, &g, &b);
        for row in y.data().chunks(32) {
            let mu: f32 = row.iter().sum::<f32>() / 32.0;
            let var: f32 = row.iter().map(|&v| (v - mu) * (v - mu)).sum::<f32>() / 32.0;
            assert!(mu.abs() < 1e-5);
            assert!((var - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn gamma_beta_affine_applied() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [1, 4]);
        let g = Tensor::full([4], 2.0);
        let b = Tensor::full([4], 10.0);
        let (y, _) = layernorm(&x, &g, &b);
        let mu: f32 = y.data().iter().sum::<f32>() / 4.0;
        assert!((mu - 10.0).abs() < 1e-4); // mean shifts to β
    }

    #[test]
    fn welford_stats_match_two_pass() {
        let mut rng = Rng::new(3);
        // Width deliberately not a multiple of the chunk size; offset mean
        // exercises the cancellation robustness Welford buys.
        let x = Tensor::randn([1, 301], 1.0, &mut rng).map(|v| v + 1000.0);
        let (mu, var) = row_stats(x.data());
        let naive_mu = x.data().iter().sum::<f32>() / 301.0;
        let naive_var = x
            .data()
            .iter()
            .map(|&v| (v - naive_mu) * (v - naive_mu))
            .sum::<f32>()
            / 301.0;
        assert!((mu - naive_mu).abs() < 1e-3, "{mu} vs {naive_mu}");
        assert!((var - naive_var).abs() / naive_var < 1e-2, "{var} vs {naive_var}");
    }

    #[test]
    fn parallel_rows_match_serial_rows() {
        // Same input, once below and once above the parallel threshold
        // (replicated rows), must normalize each row identically.
        let mut rng = Rng::new(4);
        let row = Tensor::randn([1, 128], 1.5, &mut rng);
        let g = Tensor::randn([128], 0.3, &mut rng).map(|v| v + 1.0);
        let b = Tensor::randn([128], 0.3, &mut rng);
        let (small, _) = layernorm(&row, &g, &b);
        let reps = 512; // 512×128 = 64k ≥ threshold
        let big_in = Tensor::from_vec(row.data().repeat(reps), [reps, 128]);
        let (big, _) = layernorm(&big_in, &g, &b);
        for r in 0..reps {
            let got = &big.data()[r * 128..(r + 1) * 128];
            for (x, y) in got.iter().zip(small.data()) {
                assert!((x - y).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn backward_matches_finite_difference() {
        let mut rng = Rng::new(7);
        let x = Tensor::randn([3, 8], 1.0, &mut rng);
        let g = Tensor::randn([8], 0.5, &mut rng).map(|v| v + 1.0);
        let b = Tensor::randn([8], 0.5, &mut rng);
        let dy = Tensor::randn([3, 8], 1.0, &mut rng);

        let (_, ctx) = layernorm(&x, &g, &b);
        let (dx, dgamma, dbeta) = layernorm_backward(&x, &g, &ctx, &dy);

        let loss = |x: &Tensor, g: &Tensor, b: &Tensor| -> f32 {
            let (y, _) = layernorm(x, g, b);
            y.data()
                .iter()
                .zip(dy.data())
                .map(|(&yy, &dd)| yy * dd)
                .sum()
        };
        let h = 1e-3;
        // dx check on a handful of coordinates
        for &i in &[0usize, 5, 12, 23] {
            let mut xp = x.to_vec();
            xp[i] += h;
            let mut xm = x.to_vec();
            xm[i] -= h;
            let fd = (loss(&Tensor::from_vec(xp, x.shape().clone()), &g, &b)
                - loss(&Tensor::from_vec(xm, x.shape().clone()), &g, &b))
                / (2.0 * h);
            assert!((dx.at(i) - fd).abs() < 2e-2, "dx[{i}]: {} vs {fd}", dx.at(i));
        }
        // dgamma / dbeta
        for i in 0..8 {
            let mut gp = g.to_vec();
            gp[i] += h;
            let mut gm = g.to_vec();
            gm[i] -= h;
            let fd = (loss(&x, &Tensor::from_vec(gp, [8usize]), &b)
                - loss(&x, &Tensor::from_vec(gm, [8usize]), &b))
                / (2.0 * h);
            assert!((dgamma.at(i) - fd).abs() < 2e-2);

            let mut bp = b.to_vec();
            bp[i] += h;
            let mut bm = b.to_vec();
            bm[i] -= h;
            let fd = (loss(&x, &g, &Tensor::from_vec(bp, [8usize]))
                - loss(&x, &g, &Tensor::from_vec(bm, [8usize])))
                / (2.0 * h);
            assert!((dbeta.at(i) - fd).abs() < 2e-2);
        }
    }

    #[test]
    fn parallel_backward_matches_serial() {
        let mut rng = Rng::new(8);
        let reps = 1200; // 1200×64 ≥ the shared PAR_NUMEL threshold
        let x = Tensor::randn([reps, 64], 1.0, &mut rng);
        let g = Tensor::randn([64], 0.4, &mut rng).map(|v| v + 1.0);
        let dy = Tensor::randn([reps, 64], 1.0, &mut rng);
        let b = Tensor::zeros([64]);
        let (_, ctx) = layernorm(&x, &g, &b);
        let (dx, dgamma, dbeta) = layernorm_backward(&x, &g, &ctx, &dy);

        // serial reference over the first rows only
        let rows_small = 4;
        let xs = Tensor::from_vec(x.data()[..rows_small * 64].to_vec(), [rows_small, 64]);
        let dys = Tensor::from_vec(dy.data()[..rows_small * 64].to_vec(), [rows_small, 64]);
        let (_, ctx_s) = layernorm(&xs, &g, &b);
        let (dx_s, _, _) = layernorm_backward(&xs, &g, &ctx_s, &dys);
        for i in 0..rows_small * 64 {
            assert!((dx.at(i) - dx_s.at(i)).abs() < 1e-5);
        }
        // dγ/dβ partial-fold consistency: recompute serially
        let mut want_g = vec![0.0f32; 64];
        let mut want_b = vec![0.0f32; 64];
        for r in 0..reps {
            for j in 0..64 {
                let xhat = (x.at(r * 64 + j) - ctx.mean[r]) * ctx.rstd[r];
                want_g[j] += dy.at(r * 64 + j) * xhat;
                want_b[j] += dy.at(r * 64 + j);
            }
        }
        for j in 0..64 {
            assert!((dgamma.at(j) - want_g[j]).abs() < 2e-2 * want_g[j].abs().max(1.0));
            assert!((dbeta.at(j) - want_b[j]).abs() < 2e-2 * want_b[j].abs().max(1.0));
        }
    }

    #[test]
    fn dx_rows_orthogonal_to_ones_when_gamma_const() {
        // With γ constant, Σ_j dx_j = 0 per row (projection property).
        let mut rng = Rng::new(9);
        let x = Tensor::randn([4, 16], 1.0, &mut rng);
        let g = Tensor::full([16], 1.3);
        let b = Tensor::zeros([16]);
        let dy = Tensor::randn([4, 16], 1.0, &mut rng);
        let (_, ctx) = layernorm(&x, &g, &b);
        let (dx, _, _) = layernorm_backward(&x, &g, &ctx, &dy);
        for row in dx.data().chunks(16) {
            let s: f32 = row.iter().sum();
            assert!(s.abs() < 1e-4, "row sum {s}");
        }
    }
}
