//! Layer normalization, forward and backward.

use crate::tensor::Tensor;

pub const LN_EPS: f32 = 1e-5;

/// Saved statistics from the forward pass, needed by the backward pass.
pub struct LayerNormCtx {
    /// Per-row mean, length = rows.
    pub mean: Vec<f32>,
    /// Per-row reciprocal std, length = rows.
    pub rstd: Vec<f32>,
}

/// LayerNorm over the last axis: `y = (x − μ)/σ · γ + β`.
pub fn layernorm(x: &Tensor, gamma: &Tensor, beta: &Tensor) -> (Tensor, LayerNormCtx) {
    let n = x.shape().last();
    assert_eq!(gamma.numel(), n, "gamma len");
    assert_eq!(beta.numel(), n, "beta len");
    let rows = x.shape().rows();
    let (g, b) = (gamma.data(), beta.data());
    let mut out = vec![0.0f32; x.numel()];
    let mut mean = vec![0.0f32; rows];
    let mut rstd = vec![0.0f32; rows];
    for (r, (o_row, x_row)) in out.chunks_mut(n).zip(x.data().chunks(n)).enumerate() {
        let mu = x_row.iter().sum::<f32>() / n as f32;
        let var = x_row.iter().map(|&v| (v - mu) * (v - mu)).sum::<f32>() / n as f32;
        let rs = 1.0 / (var + LN_EPS).sqrt();
        mean[r] = mu;
        rstd[r] = rs;
        for (j, (o, &xv)) in o_row.iter_mut().zip(x_row).enumerate() {
            *o = (xv - mu) * rs * g[j] + b[j];
        }
    }
    (
        Tensor::from_vec(out, x.shape().clone()),
        LayerNormCtx { mean, rstd },
    )
}

/// Backward of LayerNorm. Returns `(dx, dgamma, dbeta)`.
pub fn layernorm_backward(
    x: &Tensor,
    gamma: &Tensor,
    ctx: &LayerNormCtx,
    dy: &Tensor,
) -> (Tensor, Tensor, Tensor) {
    let n = x.shape().last();
    let g = gamma.data();
    let mut dx = vec![0.0f32; x.numel()];
    let mut dgamma = vec![0.0f32; n];
    let mut dbeta = vec![0.0f32; n];
    for (r, ((dx_row, x_row), dy_row)) in dx
        .chunks_mut(n)
        .zip(x.data().chunks(n))
        .zip(dy.data().chunks(n))
        .enumerate()
    {
        let (mu, rs) = (ctx.mean[r], ctx.rstd[r]);
        // xhat = (x − μ)·rs ; dy_g = dy ⊙ γ
        // dx = rs·(dy_g − mean(dy_g) − xhat·mean(dy_g ⊙ xhat))
        let mut sum_dyg = 0.0f32;
        let mut sum_dyg_xhat = 0.0f32;
        for j in 0..n {
            let xhat = (x_row[j] - mu) * rs;
            let dyg = dy_row[j] * g[j];
            sum_dyg += dyg;
            sum_dyg_xhat += dyg * xhat;
            dgamma[j] += dy_row[j] * xhat;
            dbeta[j] += dy_row[j];
        }
        let m1 = sum_dyg / n as f32;
        let m2 = sum_dyg_xhat / n as f32;
        for j in 0..n {
            let xhat = (x_row[j] - mu) * rs;
            let dyg = dy_row[j] * g[j];
            dx_row[j] = rs * (dyg - m1 - xhat * m2);
        }
    }
    (
        Tensor::from_vec(dx, x.shape().clone()),
        Tensor::from_vec(dgamma, [n]),
        Tensor::from_vec(dbeta, [n]),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn normalized_rows_have_zero_mean_unit_var() {
        let mut rng = Rng::new(1);
        let x = Tensor::randn([5, 32], 2.0, &mut rng);
        let g = Tensor::ones([32]);
        let b = Tensor::zeros([32]);
        let (y, _) = layernorm(&x, &g, &b);
        for row in y.data().chunks(32) {
            let mu: f32 = row.iter().sum::<f32>() / 32.0;
            let var: f32 = row.iter().map(|&v| (v - mu) * (v - mu)).sum::<f32>() / 32.0;
            assert!(mu.abs() < 1e-5);
            assert!((var - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn gamma_beta_affine_applied() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [1, 4]);
        let g = Tensor::full([4], 2.0);
        let b = Tensor::full([4], 10.0);
        let (y, _) = layernorm(&x, &g, &b);
        let mu: f32 = y.data().iter().sum::<f32>() / 4.0;
        assert!((mu - 10.0).abs() < 1e-4); // mean shifts to β
    }

    #[test]
    fn backward_matches_finite_difference() {
        let mut rng = Rng::new(7);
        let x = Tensor::randn([3, 8], 1.0, &mut rng);
        let g = Tensor::randn([8], 0.5, &mut rng).map(|v| v + 1.0);
        let b = Tensor::randn([8], 0.5, &mut rng);
        let dy = Tensor::randn([3, 8], 1.0, &mut rng);

        let (_, ctx) = layernorm(&x, &g, &b);
        let (dx, dgamma, dbeta) = layernorm_backward(&x, &g, &ctx, &dy);

        let loss = |x: &Tensor, g: &Tensor, b: &Tensor| -> f32 {
            let (y, _) = layernorm(x, g, b);
            y.data()
                .iter()
                .zip(dy.data())
                .map(|(&yy, &dd)| yy * dd)
                .sum()
        };
        let h = 1e-3;
        // dx check on a handful of coordinates
        for &i in &[0usize, 5, 12, 23] {
            let mut xp = x.to_vec();
            xp[i] += h;
            let mut xm = x.to_vec();
            xm[i] -= h;
            let fd = (loss(&Tensor::from_vec(xp, x.shape().clone()), &g, &b)
                - loss(&Tensor::from_vec(xm, x.shape().clone()), &g, &b))
                / (2.0 * h);
            assert!((dx.at(i) - fd).abs() < 2e-2, "dx[{i}]: {} vs {fd}", dx.at(i));
        }
        // dgamma / dbeta
        for i in 0..8 {
            let mut gp = g.to_vec();
            gp[i] += h;
            let mut gm = g.to_vec();
            gm[i] -= h;
            let fd = (loss(&x, &Tensor::from_vec(gp, [8usize]), &b)
                - loss(&x, &Tensor::from_vec(gm, [8usize]), &b))
                / (2.0 * h);
            assert!((dgamma.at(i) - fd).abs() < 2e-2);

            let mut bp = b.to_vec();
            bp[i] += h;
            let mut bm = b.to_vec();
            bm[i] -= h;
            let fd = (loss(&x, &g, &Tensor::from_vec(bp, [8usize]))
                - loss(&x, &g, &Tensor::from_vec(bm, [8usize])))
                / (2.0 * h);
            assert!((dbeta.at(i) - fd).abs() < 2e-2);
        }
    }

    #[test]
    fn dx_rows_orthogonal_to_ones_when_gamma_const() {
        // With γ constant, Σ_j dx_j = 0 per row (projection property).
        let mut rng = Rng::new(9);
        let x = Tensor::randn([4, 16], 1.0, &mut rng);
        let g = Tensor::full([16], 1.3);
        let b = Tensor::zeros([16]);
        let dy = Tensor::randn([4, 16], 1.0, &mut rng);
        let (_, ctx) = layernorm(&x, &g, &b);
        let (dx, _, _) = layernorm_backward(&x, &g, &ctx, &dy);
        for row in dx.data().chunks(16) {
            let s: f32 = row.iter().sum();
            assert!(s.abs() < 1e-4, "row sum {s}");
        }
    }
}
