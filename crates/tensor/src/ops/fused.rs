//! Fused multi-op kernels for the transformer hot path.
//!
//! Each function here replaces a chain of primitive ops (and the
//! intermediate tensors plus tape nodes between them) with one kernel:
//!
//! * [`matmul_bias`] — `x·W + b` with the bias broadcast into the GEMM
//!   output buffer *before* accumulation, so the bias add is free.
//! * [`linear_gelu`] — a full fused `gelu(x·W + b)` feed-forward layer.
//! * [`softmax_pool`] — the cross-attention aggregator's learned pooling
//!   (`softmax(y·p)ᵀ · y`) without materializing `[N,C,1]` logits /
//!   `[N,1,C]` weights / `[N,1,D]` pooled as separate batched-matmul
//!   tensors.

use crate::ops::gemm::{gemm, gemm_batch_into, gemm_bias_op, gemm_op, GemmJob, GemmLayout, Operand};
use crate::ops::reduce::softmax_last;
use crate::par;
use crate::shape::Shape;
use crate::tensor::Tensor;

fn linear_dims(a: &Tensor, w: &Tensor, bias: &Tensor) -> (usize, usize, usize) {
    assert_eq!(w.ndim(), 2, "weight must be 2-D, got {}", w.shape());
    let (k, n) = (w.dims()[0], w.dims()[1]);
    assert_eq!(
        a.shape().last(),
        k,
        "matmul_bias inner dims {} vs {}",
        a.shape(),
        w.shape()
    );
    assert_eq!(bias.numel(), n, "bias len {} vs out dim {n}", bias.numel());
    (a.shape().rows(), k, n)
}

/// Fused `x·W + b`: the Linear layer forward in one GEMM, with the bias
/// added in the GEMM epilogue (during the micro-kernel store of the first
/// depth block) — no broadcast pre-pass over the output buffer.
/// Leading axes of `x` are preserved.
pub fn matmul_bias(a: &Tensor, w: &Tensor, bias: &Tensor) -> Tensor {
    let (m, k, n) = linear_dims(a, w, bias);
    let mut c = vec![0.0f32; m * n];
    gemm_bias_op(
        GemmLayout::NN,
        1.0,
        Operand::from_tensor(a),
        Operand::from_tensor(w),
        bias.data(),
        &mut c,
        m,
        k,
        n,
    );
    let mut out_dims = a.dims().to_vec();
    *out_dims.last_mut().unwrap() = n;
    Tensor::from_vec(c, Shape::new(&out_dims))
}

/// Fused `gelu(x·W + b)` (the MLP up-projection + activation).
///
/// Returns `(y, h)` with `h = x·W + b` saved for the backward pass.
pub fn linear_gelu(a: &Tensor, w: &Tensor, bias: &Tensor) -> (Tensor, Tensor) {
    let (m, k, n) = linear_dims(a, w, bias);
    let mut h = vec![0.0f32; m * n];
    gemm_bias_op(
        GemmLayout::NN,
        1.0,
        Operand::from_tensor(a),
        Operand::from_tensor(w),
        bias.data(),
        &mut h,
        m,
        k,
        n,
    );
    let mut y = vec![0.0f32; h.len()];
    par::for_each_row_zip(&mut y, n, &mut h, n, |_, y_row, h_row| {
        crate::simd::gelu_into(h_row, y_row);
    });
    let mut out_dims = a.dims().to_vec();
    *out_dims.last_mut().unwrap() = n;
    let shape = Shape::new(&out_dims);
    (Tensor::from_vec(y, shape.clone()), Tensor::from_vec(h, shape))
}

/// Learned softmax pooling over the channel axis, fused.
///
/// `y: [N, C, D]`, `pw: [D, 1]` (or `[D]`). Computes per position `n`:
///
/// ```text
/// w[n, :]   = softmax_c(y[n, c, :] · pw)
/// out[n, :] = Σ_c w[n, c] · y[n, c, :]
/// ```
///
/// Returns `(pooled [N, D], weights [N, C])`; the weights are what the
/// backward pass needs. Replaces a matmul → reshape → softmax → reshape →
/// bmm chain (five tape nodes, three materialized intermediates) with one
/// node. The logits fold into a single `[N·C, D] × [D, 1]` GEMV, and the
/// per-position `[1,C]×[C,D]` pooling products — individually far too small
/// to amortize a GEMM dispatch — run as one ragged batch through
/// [`gemm_batch_into`], which picks the small-product kernel per job and
/// parallelizes across the whole batch.
pub fn softmax_pool(y: &Tensor, pw: &Tensor) -> (Tensor, Tensor) {
    assert_eq!(y.ndim(), 3, "softmax_pool wants [N, C, D], got {}", y.shape());
    let (nn, c, d) = (y.dims()[0], y.dims()[1], y.dims()[2]);
    assert_eq!(pw.numel(), d, "pool weight len {} vs dim {d}", pw.numel());
    let yo = Operand::from_tensor(y);

    // Logits: every position's `[C,D]·[D,1]` product is the same GEMV over
    // consecutive rows, so the whole thing folds into ONE `[N·C, D]×[D, 1]`
    // product — one dispatch instead of N tiny ones.
    let mut logits = vec![0.0f32; nn * c];
    gemm_op(
        GemmLayout::NN,
        1.0,
        yo,
        Operand::from_tensor(pw),
        &mut logits,
        nn * c,
        d,
        1,
    );

    let weights = softmax_last(&Tensor::from_vec(logits, [nn, c]));

    // Pooling: out[n,:] = w[n,:]·y[n,:,:] is genuinely batched (a distinct
    // weight row per position) — hand the ragged batch to gemm_batch_into.
    let wd = weights.data();
    let jobs: Vec<GemmJob<'_>> = (0..nn)
        .map(|n_idx| GemmJob {
            layout: GemmLayout::NN,
            alpha: 1.0,
            a: Operand::F32(&wd[n_idx * c..(n_idx + 1) * c]),
            b: yo.slice(n_idx * c * d..(n_idx + 1) * c * d),
            m: 1,
            k: c,
            n: d,
            c_off: n_idx * d,
        })
        .collect();
    let mut out = vec![0.0f32; nn * d];
    gemm_batch_into(&jobs, &mut out);

    (Tensor::from_vec(out, [nn, d]), weights)
}

/// Backward of [`softmax_pool`]. Given the op input `y`, pool weights `pw`,
/// saved softmax `weights` and upstream gradient `g [N, D]`, returns
/// `(dy, dpw)`.
pub fn softmax_pool_backward(
    y: &Tensor,
    pw: &Tensor,
    weights: &Tensor,
    g: &Tensor,
) -> (Tensor, Tensor) {
    let (nn, c, d) = (y.dims()[0], y.dims()[1], y.dims()[2]);
    assert_eq!(g.dims(), &[nn, d], "softmax_pool grad shape");
    let p = pw.data();
    let par = nn * c * d >= par::PAR_NUMEL;

    // Pass 1 — dl[n,c]: ds[c] = g·y[c] (grad wrt each softmax weight) run
    // through the softmax backward per position.
    let mut dl = vec![0.0f32; nn * c];
    par::for_each_row_indexed_if(par, &mut dl, c, |n_idx, dl_row| {
        let g_row = &g.data()[n_idx * d..(n_idx + 1) * d];
        let w_row = &weights.data()[n_idx * c..(n_idx + 1) * c];
        for (ci, v) in dl_row.iter_mut().enumerate() {
            let row = &y.data()[(n_idx * c + ci) * d..(n_idx * c + ci + 1) * d];
            let mut s = 0.0f32;
            for (&rv, &gv) in row.iter().zip(g_row) {
                s = rv.mul_add(gv, s);
            }
            *v = s;
        }
        let dot: f32 = dl_row.iter().zip(w_row).map(|(&a, &b)| a * b).sum();
        for (v, &w) in dl_row.iter_mut().zip(w_row) {
            *v = (*v - dot) * w;
        }
    });

    // Pass 2 — dy[n,c,:] = w[n,c]·g[n,:] + dl[n,c]·pw (disjoint per-position
    // slabs, fully parallel).
    let mut dy = vec![0.0f32; nn * c * d];
    par::for_each_row_indexed_if(par, &mut dy, c * d, |n_idx, dy_slab| {
        let g_row = &g.data()[n_idx * d..(n_idx + 1) * d];
        for (ci, dy_row) in dy_slab.chunks_mut(d).enumerate() {
            let wv = weights.at(n_idx * c + ci);
            let dlv = dl[n_idx * c + ci];
            for ((o, &gv), &pv) in dy_row.iter_mut().zip(g_row).zip(p) {
                *o = wv.mul_add(gv, dlv * pv);
            }
        }
    });

    // Pass 3 — dpw = Σ_{n,c} dl[n,c]·y[n,c,:], which is exactly
    // yᵀ·dl over the folded [N·C, D] view: one TN GEMM.
    let mut dpw = vec![0.0f32; d];
    gemm(GemmLayout::TN, 1.0, y.data(), &dl, &mut dpw, d, nn * c, 1);

    (
        Tensor::from_vec(dy, Shape::new(&[nn, c, d])),
        Tensor::from_vec(dpw, pw.shape().clone()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;
    use crate::rng::Rng;

    #[test]
    fn matmul_bias_matches_unfused() {
        let mut rng = Rng::new(1);
        let x = Tensor::randn([3, 5, 8], 1.0, &mut rng);
        let w = Tensor::randn([8, 6], 1.0, &mut rng);
        let b = Tensor::randn([6], 1.0, &mut rng);
        let fused = matmul_bias(&x, &w, &b);
        let unfused = ops::add_bias(&ops::matmul(&x, &w), &b);
        assert_eq!(fused.dims(), &[3, 5, 6]);
        assert!(fused.max_abs_diff(&unfused) < 1e-5);
    }

    #[test]
    fn matmul_bias_blocked_path_matches_unfused() {
        // Big enough to take the packed GEMM path.
        let mut rng = Rng::new(2);
        let x = Tensor::randn([130, 70], 1.0, &mut rng);
        let w = Tensor::randn([70, 90], 1.0, &mut rng);
        let b = Tensor::randn([90], 1.0, &mut rng);
        let fused = matmul_bias(&x, &w, &b);
        let unfused = ops::add_bias(&ops::matmul(&x, &w), &b);
        assert!(fused.rel_l2_diff(&unfused) < 1e-5);
    }

    #[test]
    fn linear_gelu_matches_unfused() {
        let mut rng = Rng::new(3);
        let x = Tensor::randn([4, 7], 1.0, &mut rng);
        let w = Tensor::randn([7, 9], 1.0, &mut rng);
        let b = Tensor::randn([9], 1.0, &mut rng);
        let (y, h) = linear_gelu(&x, &w, &b);
        let h_ref = ops::add_bias(&ops::matmul(&x, &w), &b);
        assert!(h.max_abs_diff(&h_ref) < 1e-5);
        assert!(y.max_abs_diff(&ops::gelu(&h_ref)) < 1e-5);
    }

    #[test]
    fn softmax_pool_matches_composed_ops() {
        let mut rng = Rng::new(4);
        let (n, c, d) = (6, 5, 8);
        let y = Tensor::randn([n, c, d], 1.0, &mut rng);
        let pw = Tensor::randn([d, 1], 1.0, &mut rng);
        let (pooled, weights) = softmax_pool(&y, &pw);

        // composed reference: logits = y·pw, softmax, bmm
        let logits = ops::matmul(&y, &pw).reshape(&[n, c]);
        let w_ref = ops::softmax_last(&logits);
        assert!(weights.max_abs_diff(&w_ref) < 1e-5);
        let pooled_ref = ops::bmm(&w_ref.reshape(&[n, 1, c]), &y).reshape(&[n, d]);
        assert!(pooled.max_abs_diff(&pooled_ref) < 1e-5);
    }

    #[test]
    fn softmax_pool_weights_sum_to_one() {
        let mut rng = Rng::new(5);
        let y = Tensor::randn([3, 7, 4], 2.0, &mut rng);
        let pw = Tensor::randn([4], 1.0, &mut rng);
        let (_, weights) = softmax_pool(&y, &pw);
        for row in weights.data().chunks(7) {
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_pool_backward_matches_finite_difference() {
        let mut rng = Rng::new(6);
        let (n, c, d) = (2, 3, 4);
        let y = Tensor::randn([n, c, d], 0.7, &mut rng);
        let pw = Tensor::randn([d, 1], 0.7, &mut rng);
        let g = Tensor::randn([n, d], 1.0, &mut rng);

        let (_, weights) = softmax_pool(&y, &pw);
        let (dy, dpw) = softmax_pool_backward(&y, &pw, &weights, &g);

        let loss = |y: &Tensor, pw: &Tensor| -> f32 {
            let (pooled, _) = softmax_pool(y, pw);
            pooled
                .data()
                .iter()
                .zip(g.data())
                .map(|(&a, &b)| a * b)
                .sum()
        };
        let h = 1e-3;
        for i in 0..n * c * d {
            let mut yp = y.to_vec();
            yp[i] += h;
            let mut ym = y.to_vec();
            ym[i] -= h;
            let fd = (loss(&Tensor::from_vec(yp, [n, c, d]), &pw)
                - loss(&Tensor::from_vec(ym, [n, c, d]), &pw))
                / (2.0 * h);
            assert!(
                (dy.at(i) - fd).abs() < 2e-2,
                "dy[{i}]: {} vs {fd}",
                dy.at(i)
            );
        }
        for i in 0..d {
            let mut pp = pw.to_vec();
            pp[i] += h;
            let mut pm = pw.to_vec();
            pm[i] -= h;
            let fd = (loss(&y, &Tensor::from_vec(pp, [d, 1]))
                - loss(&y, &Tensor::from_vec(pm, [d, 1])))
                / (2.0 * h);
            assert!(
                (dpw.at(i) - fd).abs() < 2e-2,
                "dpw[{i}]: {} vs {fd}",
                dpw.at(i)
            );
        }
    }

    #[test]
    fn softmax_pool_parallel_band_path_matches_serial() {
        let mut rng = Rng::new(7);
        // 200×8×48 = 76.8k ≥ threshold → banded parallel backward.
        let (n, c, d) = (200, 8, 48);
        let y = Tensor::randn([n, c, d], 1.0, &mut rng);
        let pw = Tensor::randn([d], 1.0, &mut rng);
        let g = Tensor::randn([n, d], 1.0, &mut rng);
        let (_, weights) = softmax_pool(&y, &pw);
        let (dy, dpw) = softmax_pool_backward(&y, &pw, &weights, &g);

        // serial reference computed per-position on slices
        let mut want_dpw = vec![0.0f32; d];
        for n_idx in 0..n {
            let ys = Tensor::from_vec(
                y.data()[n_idx * c * d..(n_idx + 1) * c * d].to_vec(),
                [1, c, d],
            );
            let gs = Tensor::from_vec(g.data()[n_idx * d..(n_idx + 1) * d].to_vec(), [1, d]);
            let (_, ws) = softmax_pool(&ys, &pw);
            let (dys, dpws) = softmax_pool_backward(&ys, &pw, &ws, &gs);
            // The batched forward computes logits through the blocked GEMV
            // path while the per-position reference takes the small-product
            // kernel; accumulation order differs, so the softmax weights
            // (and hence dy) agree to rounding, not bitwise.
            for j in 0..c * d {
                assert!((dy.at(n_idx * c * d + j) - dys.at(j)).abs() < 1e-4);
            }
            for (j, w) in want_dpw.iter_mut().enumerate() {
                *w += dpws.at(j);
            }
        }
        for (j, &w) in want_dpw.iter().enumerate() {
            assert!((dpw.at(j) - w).abs() < 1e-3 * w.abs().max(1.0));
        }
    }
}
