//! Non-differentiable compute kernels.
//!
//! Everything here is a pure function `&Tensor -> Tensor`; the autograd layer
//! in [`crate::autograd`] wraps these with backward rules.

pub mod attention;
pub mod elementwise;
pub mod fused;
pub mod gemm;
pub mod norm;
pub mod reduce;
pub mod shape_ops;

pub use attention::{
    flash_attention, flash_attention_backward, flash_attention_peak_bytes, naive_attention,
    naive_attention_peak_bytes, FLASH_BC, FLASH_BR,
};
pub use elementwise::{
    add, add_bias, add_bias_gelu, add_bias_gelu_backward, add_scaled, add_scaled_into, exp_fast,
    gelu, gelu_grad_scalar, gelu_scalar, mul, mul_last, scale, square, sub, tanh_fast,
};
pub use fused::{linear_gelu, matmul_bias, softmax_pool, softmax_pool_backward};
pub use gemm::{
    bmm, bmm_nt, bmm_nt_scaled, bmm_scaled, bmm_tn, bmm_tn_scaled, gemm, gemm_bias, matmul,
    matmul_nt, matmul_tn, GemmLayout,
};
pub use norm::{layernorm, layernorm_backward, LayerNormCtx, LN_EPS};
pub use reduce::{
    mean_all, mean_axis1, softmax_last, softmax_last_backward, sum_all, sum_to_last,
};
pub use shape_ops::{
    broadcast_to_batch, concat, gather_rows, gather_rows_backward, patchify, select_axis1,
    select_axis1_backward, slice, slice_backward, sum_over_batch, swap_axes12, transpose_last2,
    unpatchify,
};
