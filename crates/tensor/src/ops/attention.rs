//! Flash-style fused attention: tiled online-softmax forward and backward.
//!
//! [`flash_attention`] computes `softmax(scale · Q·Kᵀ) · V` without ever
//! materializing the `[B, Sq, Sk]` score matrix. K/V stream through
//! cache-sized tiles ([`FLASH_BC`] rows) against a resident Q tile
//! ([`FLASH_BR`] rows); a running row-max / row-sum pair maintains the
//! softmax online, and only the `[B, Sq]` logsumexp survives the forward
//! pass. The backward pass recomputes score tiles from Q/K and the saved
//! logsumexp — `exp(s − lse)` *is* the softmax row, exactly — so attention
//! activation memory is O(Sq·d) instead of O(Sq·Sk).
//!
//! Every tile product routes through the packed GEMM micro-panels
//! ([`gemm_serial_or_small`]), so the kernel inherits the cache blocking and
//! register tiling of the matmul layer. Work fans out over (batch, Q-tile)
//! tasks — (batch, K-tile) for the dK/dV pass — gated on total FLOPs like
//! the GEMM dispatch, so ragged hierarchical-aggregation shapes still
//! saturate cores. Within a task the K/V (or Q) tile loop is strictly
//! serial and the tile sizes are fixed constants, so partial-sum groupings
//! are shape-derived and results are bitwise reproducible at any thread
//! count.

use crate::ops::gemm::{gemm_serial_or_small, Epilogue, GemmLayout};
use crate::par;
use crate::scratch::with_scratch;
use crate::simd::{self, exp_fast};
use crate::shape::Shape;
use crate::tensor::Tensor;

/// Query rows resident per task: small enough that (batch·Q-tiles) still
/// yields a deep task grid for ragged aggregation shapes, large enough to
/// amortize the per-tile GEMM dispatch. Retuned from 64 for the
/// explicit-SIMD micro-kernels, whose higher FLOP rate shifts the balance
/// toward packing overhead: each K/V panel pack is now amortized over
/// twice the Q rows.
pub const FLASH_BR: usize = 128;
/// Key/value rows streamed per inner step. The `BR×BC` score tile
/// (128 KiB) plus the Q tile stays L2-resident next to the GEMM pack
/// buffers. (BR, BC) = (128, 256) measured fastest of
/// {64, 128} × {128, 256} at S ∈ {256, 512} on the AVX-512 kernels
/// (1.2× over the pre-SIMD (64, 128) tuning at S = 512).
pub const FLASH_BC: usize = 256;

fn attn_dims(q: &Tensor, k: &Tensor, v: &Tensor) -> (usize, usize, usize, usize) {
    assert_eq!(q.ndim(), 3, "flash_attention q must be [B, Sq, d], got {}", q.shape());
    assert_eq!(k.ndim(), 3, "flash_attention k must be [B, Sk, d], got {}", k.shape());
    let (b, sq, d) = (q.dims()[0], q.dims()[1], q.dims()[2]);
    let (bk, sk, dk) = (k.dims()[0], k.dims()[1], k.dims()[2]);
    assert_eq!(b, bk, "flash_attention batch {} vs {}", q.shape(), k.shape());
    assert_eq!(d, dk, "flash_attention head dim {} vs {}", q.shape(), k.shape());
    assert_eq!(
        v.dims(),
        &[b, sk, d],
        "flash_attention v shape {} vs expected [{b}, {sk}, {d}]",
        v.shape()
    );
    (b, sq, sk, d)
}

/// Exclusive writer over pairwise-disjoint slabs of a flat output buffer,
/// the same raw-window pattern as the GEMM layer's `CTile`: tasks of the
/// parallel drivers write (batch, tile) row ranges that never overlap, so a
/// mutable slice only materializes per disjoint slab.
struct Slabs {
    base: *mut f32,
    len: usize,
}

// SAFETY: a `Slabs` is an exclusive capability over its buffer for the
// duration of one parallel region, and every `slab` range handed out is
// pairwise disjoint (one per (batch, tile) task).
unsafe impl Send for Slabs {}
unsafe impl Sync for Slabs {}

impl Slabs {
    fn new(buf: &mut [f32]) -> Self {
        Slabs {
            base: buf.as_mut_ptr(),
            len: buf.len(),
        }
    }

    /// SAFETY: caller must ensure ranges handed out are pairwise disjoint
    /// and in-bounds while any returned slice lives.
    #[allow(clippy::mut_from_ref)]
    unsafe fn slab(&self, start: usize, len: usize) -> &mut [f32] {
        debug_assert!(start + len <= self.len);
        std::slice::from_raw_parts_mut(self.base.add(start), len)
    }
}

/// Fused attention forward: `out = softmax(scale · Q·Kᵀ) · V` over
/// `q: [B, Sq, d]`, `k/v: [B, Sk, d]` (B is already batch·heads).
///
/// Returns `(out [B, Sq, d], lse [B, Sq])` where `lse` is the per-row
/// logsumexp of the scaled scores — the only softmax state the backward
/// pass needs.
pub fn flash_attention(q: &Tensor, k: &Tensor, v: &Tensor, scale: f32) -> (Tensor, Tensor) {
    let (b, sq, sk, d) = attn_dims(q, k, v);
    let q_tiles = sq.div_ceil(FLASH_BR).max(1);
    let mut out = vec![0.0f32; b * sq * d];
    let mut lse = vec![0.0f32; b * sq];
    if b * sq * sk * d > 0 {
        let out_s = Slabs::new(&mut out);
        let lse_s = Slabs::new(&mut lse);
        let par_ok = b * sq * sk * d >= par::PAR_FLOPS;
        par::for_each_task_if(par_ok, b * q_tiles, |t| {
            let (bi, qt) = (t / q_tiles, t % q_tiles);
            let i0 = qt * FLASH_BR;
            let br = FLASH_BR.min(sq - i0);
            // SAFETY: (batch, Q-tile) tasks cover disjoint row ranges.
            let o_tile = unsafe { out_s.slab((bi * sq + i0) * d, br * d) };
            let l_tile = unsafe { lse_s.slab(bi * sq + i0, br) };
            flash_fwd_tile(
                &q.data()[(bi * sq + i0) * d..(bi * sq + i0 + br) * d],
                &k.data()[bi * sk * d..(bi + 1) * sk * d],
                &v.data()[bi * sk * d..(bi + 1) * sk * d],
                scale,
                (br, sk, d),
                o_tile,
                l_tile,
            );
        });
    }
    (
        Tensor::from_vec(out, Shape::new(&[b, sq, d])),
        Tensor::from_vec(lse, Shape::new(&[b, sq])),
    )
}

/// One (batch, Q-tile) forward task: stream K/V tiles, maintain the online
/// softmax, accumulate the unnormalized context into `out` (which arrives
/// zeroed and doubles as the accumulator), finish with the `1/l` rescale.
fn flash_fwd_tile(
    qt: &[f32],
    kb: &[f32],
    vb: &[f32],
    scale: f32,
    (br, sk, d): (usize, usize, usize),
    out: &mut [f32],
    lse: &mut [f32],
) {
    // Tile state comes from the per-thread scratch arena: `m`/`l` are
    // filled here, the score tile is fully Assign-stored before any read,
    // so recycled contents never leak into the online softmax.
    with_scratch(br * (FLASH_BC + 2), |scratch| {
        let (ml, s) = scratch.split_at_mut(2 * br);
        let (m, l) = ml.split_at_mut(br);
        m.fill(f32::NEG_INFINITY);
        l.fill(0.0);
        let mut j0 = 0;
        while j0 < sk {
            let bc = FLASH_BC.min(sk - j0);
            let st = &mut s[..br * bc];
            // S = scale · Q_tile · K_tileᵀ (scale folded into the packing; the
            // assign epilogue overwrites the reused scratch tile, no fill).
            gemm_serial_or_small(
                GemmLayout::NT,
                scale,
                qt,
                &kb[j0 * d..(j0 + bc) * d],
                Epilogue::Assign,
                st,
                br,
                d,
                bc,
            );
            // Online-softmax update: rescale the running sum and the context
            // accumulator by exp(m_old − m_new), then exponentiate in place.
            for (i, srow) in st.chunks_mut(bc).enumerate() {
                let row_max = simd::row_max(srow);
                if row_max > m[i] {
                    let corr = exp_fast(m[i] - row_max);
                    l[i] *= corr;
                    for o in out[i * d..(i + 1) * d].iter_mut() {
                        *o *= corr;
                    }
                    m[i] = row_max;
                }
                // Lane-parallel exp in its own pass, then the sum re-reads the
                // cache-hot row with a fixed lane grouping (a fused serial
                // `sum +=` would chain every lane through one accumulator).
                simd::exp_sub_sweep(srow, m[i]);
                l[i] += simd::row_sum(srow);
            }
            // out += P_tile · V_tile.
            gemm_serial_or_small(
                GemmLayout::NN,
                1.0,
                &s[..br * bc],
                &vb[j0 * d..(j0 + bc) * d],
                Epilogue::Add,
                out,
                br,
                bc,
                d,
            );
            j0 += bc;
        }
        for i in 0..br {
            let inv = 1.0 / l[i];
            for o in out[i * d..(i + 1) * d].iter_mut() {
                *o *= inv;
            }
            lse[i] = m[i] + l[i].ln();
        }
    })
}

/// Fused attention backward. Given the forward inputs, the forward output
/// `out`, the saved logsumexp `lse`, and the upstream gradient `dout`,
/// returns `(dq, dk, dv)`.
///
/// Score tiles are recomputed from Q/K (twice: once for the dQ pass, once
/// for the dK/dV pass) — the classic flash recompute tradeoff that buys
/// O(S) activation memory for ~⅓ more attention FLOPs.
pub fn flash_attention_backward(
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    scale: f32,
    out: &Tensor,
    lse: &Tensor,
    dout: &Tensor,
) -> (Tensor, Tensor, Tensor) {
    let (b, sq, sk, d) = attn_dims(q, k, v);
    assert_eq!(out.dims(), &[b, sq, d], "flash backward out shape");
    assert_eq!(lse.dims(), &[b, sq], "flash backward lse shape");
    assert_eq!(dout.dims(), &[b, sq, d], "flash backward dout shape");

    // D_i = Σ_j dO_ij · O_ij — the softmax-backward row dot, shared by both
    // passes below.
    let mut drow = vec![0.0f32; b * sq];
    par::for_each_row_indexed_if(
        b * sq * d >= par::PAR_NUMEL,
        &mut drow,
        sq.max(1),
        |bi, dr| {
            for (i, dv) in dr.iter_mut().enumerate() {
                let base = (bi * sq + i) * d;
                let o = &out.data()[base..base + d];
                let g = &dout.data()[base..base + d];
                let mut acc = 0.0f32;
                for (&ov, &gv) in o.iter().zip(g) {
                    acc = ov.mul_add(gv, acc);
                }
                *dv = acc;
            }
        },
    );

    let mut dq = vec![0.0f32; b * sq * d];
    let mut dk = vec![0.0f32; b * sk * d];
    let mut dv = vec![0.0f32; b * sk * d];
    if b * sq * sk * d > 0 {
        let par_ok = b * sq * sk * d >= par::PAR_FLOPS;

        // Pass A — dQ, parallel over (batch, Q-tile); K tiles stream serially
        // inside each task so accumulation order is shape-derived.
        let q_tiles = sq.div_ceil(FLASH_BR).max(1);
        let dq_s = Slabs::new(&mut dq);
        par::for_each_task_if(par_ok, b * q_tiles, |t| {
            let (bi, qt) = (t / q_tiles, t % q_tiles);
            let i0 = qt * FLASH_BR;
            let br = FLASH_BR.min(sq - i0);
            // SAFETY: disjoint (batch, Q-tile) row slabs.
            let dq_tile = unsafe { dq_s.slab((bi * sq + i0) * d, br * d) };
            flash_bwd_dq_tile(
                &q.data()[(bi * sq + i0) * d..(bi * sq + i0 + br) * d],
                &k.data()[bi * sk * d..(bi + 1) * sk * d],
                &v.data()[bi * sk * d..(bi + 1) * sk * d],
                &dout.data()[(bi * sq + i0) * d..(bi * sq + i0 + br) * d],
                &lse.data()[bi * sq + i0..bi * sq + i0 + br],
                &drow[bi * sq + i0..bi * sq + i0 + br],
                scale,
                (br, sk, d),
                dq_tile,
            );
        });

        // Pass B — dK/dV, parallel over (batch, K-tile); Q tiles stream
        // serially inside each task.
        let k_tiles = sk.div_ceil(FLASH_BC).max(1);
        let dk_s = Slabs::new(&mut dk);
        let dv_s = Slabs::new(&mut dv);
        par::for_each_task_if(par_ok, b * k_tiles, |t| {
            let (bi, kt) = (t / k_tiles, t % k_tiles);
            let j0 = kt * FLASH_BC;
            let bc = FLASH_BC.min(sk - j0);
            // SAFETY: disjoint (batch, K-tile) row slabs.
            let dk_tile = unsafe { dk_s.slab((bi * sk + j0) * d, bc * d) };
            let dv_tile = unsafe { dv_s.slab((bi * sk + j0) * d, bc * d) };
            flash_bwd_dkv_tile(
                &q.data()[bi * sq * d..(bi + 1) * sq * d],
                &k.data()[(bi * sk + j0) * d..(bi * sk + j0 + bc) * d],
                &v.data()[(bi * sk + j0) * d..(bi * sk + j0 + bc) * d],
                &dout.data()[bi * sq * d..(bi + 1) * sq * d],
                &lse.data()[bi * sq..(bi + 1) * sq],
                &drow[bi * sq..(bi + 1) * sq],
                scale,
                (sq, bc, d),
                dk_tile,
                dv_tile,
            );
        });
    }

    (
        Tensor::from_vec(dq, Shape::new(&[b, sq, d])),
        Tensor::from_vec(dk, Shape::new(&[b, sk, d])),
        Tensor::from_vec(dv, Shape::new(&[b, sk, d])),
    )
}

/// Recompute one probability tile `P = exp(scale·Q·Kᵀ − lse)` (exactly the
/// forward softmax rows, via the saved logsumexp) into `s`.
fn recompute_p_tile(
    qt: &[f32],
    kt: &[f32],
    lse: &[f32],
    scale: f32,
    (br, bc, d): (usize, usize, usize),
    s: &mut [f32],
) {
    gemm_serial_or_small(GemmLayout::NT, scale, qt, kt, Epilogue::Assign, s, br, d, bc);
    for (i, srow) in s.chunks_mut(bc).enumerate() {
        // The SIMD exp sweep keeps the recompute lane-parallel — this loop
        // is the bulk of flash backward's extra FLOPs.
        simd::exp_sub_sweep(srow, lse[i]);
    }
}

/// `dS = P ⊙ (dP − D)` in place over `p`, with `dp = dO·Vᵀ` already in `dp`.
fn ds_from_p_dp(p: &mut [f32], dp: &[f32], drow: &[f32], bc: usize) {
    for (i, (prow, dprow)) in p.chunks_mut(bc).zip(dp.chunks(bc)).enumerate() {
        let di = drow[i];
        for (pv, &dpv) in prow.iter_mut().zip(dprow) {
            *pv *= dpv - di;
        }
    }
}

/// One (batch, Q-tile) backward task: `dQ_tile = scale · Σ_tiles dS · K`.
#[allow(clippy::too_many_arguments)]
fn flash_bwd_dq_tile(
    qt: &[f32],
    kb: &[f32],
    vb: &[f32],
    dout_t: &[f32],
    lse_t: &[f32],
    drow_t: &[f32],
    scale: f32,
    (br, sk, d): (usize, usize, usize),
    dq_tile: &mut [f32],
) {
    // Both tiles are Assign-stored before any read, so pooled (dirty)
    // scratch is safe.
    with_scratch(2 * br * FLASH_BC, |scratch| {
        let (s, dp) = scratch.split_at_mut(br * FLASH_BC);
        let mut j0 = 0;
        while j0 < sk {
            let bc = FLASH_BC.min(sk - j0);
            let kt = &kb[j0 * d..(j0 + bc) * d];
            recompute_p_tile(qt, kt, lse_t, scale, (br, bc, d), &mut s[..br * bc]);
            // dP = dO · Vᵀ
            let dpt = &mut dp[..br * bc];
            gemm_serial_or_small(GemmLayout::NT, 1.0, dout_t, &vb[j0 * d..(j0 + bc) * d], Epilogue::Assign, dpt, br, d, bc);
            ds_from_p_dp(&mut s[..br * bc], dpt, drow_t, bc);
            // dQ += scale · dS · K_tile
            gemm_serial_or_small(GemmLayout::NN, scale, &s[..br * bc], kt, Epilogue::Add, dq_tile, br, bc, d);
            j0 += bc;
        }
    })
}

/// One (batch, K-tile) backward task:
/// `dV_tile = Σ_tiles Pᵀ·dO`, `dK_tile = scale · Σ_tiles dSᵀ·Q`.
#[allow(clippy::too_many_arguments)]
fn flash_bwd_dkv_tile(
    qb: &[f32],
    kt: &[f32],
    vt: &[f32],
    dout_b: &[f32],
    lse_b: &[f32],
    drow_b: &[f32],
    scale: f32,
    (sq, bc, d): (usize, usize, usize),
    dk_tile: &mut [f32],
    dv_tile: &mut [f32],
) {
    with_scratch(2 * FLASH_BR * bc, |scratch| {
        let (s, dp) = scratch.split_at_mut(FLASH_BR * bc);
        let mut i0 = 0;
        while i0 < sq {
            let br = FLASH_BR.min(sq - i0);
            let qt = &qb[i0 * d..(i0 + br) * d];
            let dout_t = &dout_b[i0 * d..(i0 + br) * d];
            recompute_p_tile(qt, kt, &lse_b[i0..i0 + br], scale, (br, bc, d), &mut s[..br * bc]);
            // dV += Pᵀ · dO  (P is [br, bc] row-major = the TN layout's [k, m]).
            gemm_serial_or_small(GemmLayout::TN, 1.0, &s[..br * bc], dout_t, Epilogue::Add, dv_tile, bc, br, d);
            // dP = dO · Vᵀ, then dS in place over P.
            let dpt = &mut dp[..br * bc];
            gemm_serial_or_small(GemmLayout::NT, 1.0, dout_t, vt, Epilogue::Assign, dpt, br, d, bc);
            ds_from_p_dp(&mut s[..br * bc], dpt, &drow_b[i0..i0 + br], bc);
            // dK += scale · dSᵀ · Q
            gemm_serial_or_small(GemmLayout::TN, scale, &s[..br * bc], qt, Epilogue::Add, dk_tile, bc, br, d);
            i0 += br;
        }
    })
}

/// The unfused reference composition `bmm(softmax(scale·Q·Kᵀ), V)` — the
/// "before" side of parity tests, debug asserts, and the attention benches.
pub fn naive_attention(q: &Tensor, k: &Tensor, v: &Tensor, scale: f32) -> Tensor {
    let scores = crate::ops::bmm_nt_scaled(q, k, scale);
    let p = crate::ops::softmax_last(&scores);
    crate::ops::bmm(&p, v)
}

/// Analytic peak-resident-bytes estimate for one naive attention forward:
/// the `[B,Sq,Sk]` score tensor, the softmax's same-shaped copy (both alive
/// while softmax runs), and the `[B,Sq,d]` context output.
pub fn naive_attention_peak_bytes(b: usize, sq: usize, sk: usize, d: usize) -> usize {
    4 * (2 * b * sq * sk + b * sq * d)
}

/// Analytic peak-resident-bytes estimate for one flash attention forward:
/// the `[B,Sq,d]` output, the `[B,Sq]` logsumexp, and per-worker tile state
/// (score tile + running max/sum) — no term scales with `Sq·Sk`.
pub fn flash_attention_peak_bytes(b: usize, sq: usize, _sk: usize, d: usize, workers: usize) -> usize {
    let per_task = FLASH_BR * FLASH_BC + 2 * FLASH_BR;
    4 * (b * sq * d + b * sq + workers.max(1) * per_task)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn randn3(b: usize, s: usize, d: usize, rng: &mut Rng) -> Tensor {
        Tensor::randn([b, s, d], 1.0, rng)
    }

    #[test]
    fn forward_matches_naive_across_shapes() {
        // S ∈ {1, 7, 64, 130, 520}: degenerate, tiny, sub-tile, a
        // non-multiple spanning several Q tiles, and one spanning multiple
        // K/V tiles (S > FLASH_BC) so the online-softmax streaming path
        // runs.
        let mut rng = Rng::new(1);
        for &(b, s, d) in &[
            (1usize, 1usize, 4usize),
            (2, 7, 8),
            (1, 64, 16),
            (2, 130, 8),
            (1, 520, 8),
        ] {
            let q = randn3(b, s, d, &mut rng);
            let k = randn3(b, s, d, &mut rng);
            let v = randn3(b, s, d, &mut rng);
            let scale = 1.0 / (d as f32).sqrt();
            let (out, lse) = flash_attention(&q, &k, &v, scale);
            let want = naive_attention(&q, &k, &v, scale);
            assert!(
                out.max_abs_diff(&want) <= 1e-4,
                "B={b} S={s} d={d}: {}",
                out.max_abs_diff(&want)
            );
            assert_eq!(lse.dims(), &[b, s]);
            assert!(lse.all_finite());
        }
    }

    #[test]
    fn cross_attention_sq_ne_sk_matches_naive() {
        let mut rng = Rng::new(2);
        for &(sq, sk) in &[(3usize, 130usize), (130, 7), (65, 64), (1, 200), (130, 520)] {
            let q = randn3(2, sq, 8, &mut rng);
            let k = randn3(2, sk, 8, &mut rng);
            let v = randn3(2, sk, 8, &mut rng);
            let (out, _) = flash_attention(&q, &k, &v, 0.35);
            let want = naive_attention(&q, &k, &v, 0.35);
            assert!(
                out.max_abs_diff(&want) <= 1e-4,
                "Sq={sq} Sk={sk}: {}",
                out.max_abs_diff(&want)
            );
        }
    }

    #[test]
    fn lse_is_the_scores_logsumexp() {
        let mut rng = Rng::new(3);
        let (q, k, v) = (
            randn3(1, 5, 4, &mut rng),
            randn3(1, 9, 4, &mut rng),
            randn3(1, 9, 4, &mut rng),
        );
        let scale = 0.5;
        let (_, lse) = flash_attention(&q, &k, &v, scale);
        let scores = crate::ops::bmm_nt_scaled(&q, &k, scale);
        for i in 0..5 {
            let row = &scores.data()[i * 9..(i + 1) * 9];
            let m = row.iter().fold(f32::NEG_INFINITY, |a, &x| a.max(x));
            let want = m + row.iter().map(|&x| (x - m).exp()).sum::<f32>().ln();
            assert!((lse.at(i) - want).abs() < 1e-4, "row {i}: {} vs {want}", lse.at(i));
        }
    }

    #[test]
    fn large_scores_stay_stable() {
        // Online softmax must survive score magnitudes that overflow a
        // naive exp (unshifted e^x saturates past ~88).
        let mut rng = Rng::new(4);
        let q = Tensor::randn([1, 70, 8], 8.0, &mut rng);
        let k = Tensor::randn([1, 70, 8], 8.0, &mut rng);
        let v = randn3(1, 70, 8, &mut rng);
        let (out, lse) = flash_attention(&q, &k, &v, 1.0);
        assert!(out.all_finite());
        assert!(lse.all_finite());
        let want = naive_attention(&q, &k, &v, 1.0);
        assert!(out.max_abs_diff(&want) <= 1e-3);
    }

    #[test]
    fn parallel_task_grid_matches_per_batch_serial() {
        // Big enough to clear the FLOPs gate: 4·256·256·32 = 8.4M ≥ 2^19.
        let mut rng = Rng::new(5);
        let (b, s, d) = (4usize, 256usize, 32usize);
        let q = randn3(b, s, d, &mut rng);
        let k = randn3(b, s, d, &mut rng);
        let v = randn3(b, s, d, &mut rng);
        let (out, lse) = flash_attention(&q, &k, &v, 0.2);
        // Per-batch slices go below the gate → serial path; the results must
        // be bitwise identical (partial-sum groupings are shape-derived).
        for bi in 0..b {
            let qs = Tensor::from_vec(q.data()[bi * s * d..(bi + 1) * s * d].to_vec(), [1, s, d]);
            let ks = Tensor::from_vec(k.data()[bi * s * d..(bi + 1) * s * d].to_vec(), [1, s, d]);
            let vs = Tensor::from_vec(v.data()[bi * s * d..(bi + 1) * s * d].to_vec(), [1, s, d]);
            let (os, ls) = flash_attention(&qs, &ks, &vs, 0.2);
            for j in 0..s * d {
                assert_eq!(out.at(bi * s * d + j), os.at(j), "batch {bi} elem {j}");
            }
            for j in 0..s {
                assert_eq!(lse.at(bi * s + j), ls.at(j));
            }
        }
    }

    #[test]
    fn backward_matches_composed_autograd() {
        use crate::autograd::Tape;
        let mut rng = Rng::new(6);
        for &(sq, sk, d) in &[(7usize, 7usize, 4usize), (5, 130, 8), (70, 3, 8), (9, 300, 4)] {
            let q = randn3(2, sq, d, &mut rng);
            let k = randn3(2, sk, d, &mut rng);
            let v = randn3(2, sk, d, &mut rng);
            let scale = 1.0 / (d as f32).sqrt();
            let g = randn3(2, sq, d, &mut rng);

            let (out, lse) = flash_attention(&q, &k, &v, scale);
            let (dq, dk, dv) = flash_attention_backward(&q, &k, &v, scale, &out, &lse, &g);

            let tape = Tape::new();
            let (qv, kv, vv) = (tape.leaf(q.clone()), tape.leaf(k.clone()), tape.leaf(v.clone()));
            let scores = tape.bmm_nt_scaled(&qv, &kv, scale);
            let p = tape.softmax_last(&scores);
            let ctx = tape.bmm(&p, &vv);
            let grads = tape.backward_seeded(&ctx, g.clone());
            assert!(
                dq.max_abs_diff(grads.get(&qv).unwrap()) <= 1e-4,
                "dq Sq={sq} Sk={sk}"
            );
            assert!(
                dk.max_abs_diff(grads.get(&kv).unwrap()) <= 1e-4,
                "dk Sq={sq} Sk={sk}"
            );
            assert!(
                dv.max_abs_diff(grads.get(&vv).unwrap()) <= 1e-4,
                "dv Sq={sq} Sk={sk}"
            );
        }
    }

    #[test]
    fn peak_bytes_estimates_favor_flash_quadratically() {
        let naive = naive_attention_peak_bytes(8, 512, 512, 64);
        let flash = flash_attention_peak_bytes(8, 512, 512, 64, 16);
        assert!(naive >= 2 * flash, "naive {naive} vs flash {flash}");
        // Naive grows with Sq·Sk; flash does not.
        assert_eq!(
            flash_attention_peak_bytes(8, 512, 2048, 64, 16),
            flash_attention_peak_bytes(8, 512, 512, 64, 16)
        );
    }
}
