//! Dense matrix multiplication: a cache-blocked, register-tiled,
//! panel-packing GEMM.
//!
//! All matmul/bmm entry points route through one kernel,
//! [`gemm`], parameterized by [`GemmLayout`]:
//!
//! * `NN` — `C += α · A[m,k] · B[k,n]`
//! * `NT` — `C += α · A[m,k] · B[n,k]ᵀ` (attention scores `Q·Kᵀ`, `dY·Wᵀ`)
//! * `TN` — `C += α · A[k,m]ᵀ · B[k,n]` (weight gradients `Xᵀ·dY`)
//!
//! The transposed operands are handled during *packing*, so the inner
//! kernel always sees the same two contiguous panel formats and never pays
//! for strided access. The blocking hierarchy is the classic three-loop
//! panel decomposition (Goto/BLIS):
//!
//! ```text
//! for jc in 0..n step NC        # B panel column block   (≈ L2/L3)
//!   for pc in 0..k step KC      # depth block            (packed panels)
//!     pack B[pc.., jc..]  ->  KC×NC panel, NR-interleaved
//!     for ic in 0..m step MC    # A panel row block      (≈ L2)
//!       pack A[ic.., pc..] -> MC×KC panel, MR-interleaved (α folded here)
//!       for jr, ir: MR×NR register micro-tile, k-major accumulation
//! ```
//!
//! The micro-kernel is the explicit-SIMD register kernel in
//! [`crate::simd`], selected once per process by runtime ISA detection
//! (AVX-512 8×32 accumulator, AVX2+FMA 6×16, or the safe auto-vectorized
//! scalar fallback — see `simd.rs` for the dispatch strategy and register
//! arithmetic). The micro-tile shape `(MR, NR)` is therefore a *runtime*
//! value ([`crate::simd::gemm_tile_shape`]); packing and the blocked loops
//! below are parameterized on it, and the store epilogue
//! ([`Epilogue`] → [`crate::simd::MicroEpi`]) is fused into the
//! micro-kernel's register stores.
//!
//! Parallelism is two-dimensional over (row-block × column-block) tiles of
//! C, each task packing its own panels into pooled per-thread scratch
//! ([`crate::scratch`]), with a split-K fallback for skinny outputs
//! (tall-thin or short-wide shapes whose C tile grid is smaller than the
//! machine). Batched products flatten every job's tile grid into one
//! cooperative task queue ([`gemm_batch_into`]) so batch-level and
//! intra-GEMM parallelism blend for ragged batches. Dispatch is gated on
//! total FLOPs (`m·n·k`), not output size, so a `[4, 1M] × [1M, 8]`
//! product still parallelizes.

use rayon::prelude::*;

use crate::dtype::DType;
use crate::scratch::{with_scratch, with_scratch_zeroed};
use crate::shape::Shape;
use crate::simd::{self, Isa, MicroEpi};
use crate::tensor::Tensor;

/// Rows per packed A panel (MC×KC ≈ 128 KiB, streams through L2). A
/// multiple of every ISA's micro-tile rows (6 and 8).
const MC: usize = 120;
/// Depth per packed panel pair.
const KC: usize = 256;
/// Columns per packed B panel (KC×NC ≈ 256 KiB; the hot KC×NR strip the
/// micro-kernel reads stays L1-resident). A multiple of every ISA's
/// micro-tile columns (16 and 32).
const NC: usize = 256;

/// Below this many multiply-adds (`m·n·k`) the whole product runs
/// single-threaded: parallel dispatch costs more than it saves. Shared
/// with the tiled attention kernels so the whole hot path parallelizes on
/// one policy.
use crate::par::PAR_FLOPS;

/// Below this many multiply-adds the panel-packing machinery is skipped in
/// favor of direct row-major loops (unit-test-sized operands).
const SMALL_FLOPS: usize = 1 << 15;

/// Operand access pattern: which side is logically transposed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GemmLayout {
    /// `A[m,k] · B[k,n]`
    NN,
    /// `A[m,k] · B[n,k]ᵀ`
    NT,
    /// `A[k,m]ᵀ · B[k,n]`
    TN,
}

/// What the micro-kernel store does with the first depth block's result.
/// Later depth blocks always accumulate; each output element is stored
/// exactly once per depth block, so the epilogue costs no extra pass.
#[derive(Clone, Copy)]
pub(crate) enum Epilogue<'a> {
    /// `C += P` — the default accumulate contract.
    Add,
    /// `C += P + bias` with the `[n]` bias row added exactly once (the
    /// fused Linear forward).
    AddBias(&'a [f32]),
    /// `C = P` — overwrite, so callers reusing a scratch buffer (the flash
    /// attention score tiles) skip the `fill(0.0)` pre-pass.
    Assign,
}

impl GemmLayout {
    #[inline]
    fn a_transposed(self) -> bool {
        matches!(self, GemmLayout::TN)
    }

    #[inline]
    fn b_transposed(self) -> bool {
        matches!(self, GemmLayout::NT)
    }
}

/// Which kernel generation the blocked driver runs. Normal dispatch is
/// always [`KernelGen::Fast`]; the baseline is retained so the
/// `gemm_ragged_*` BENCH entries and the edge-path parity tests can still
/// drive the pre-masked-tail code.
#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) enum KernelGen {
    /// SIMD transpose-gather packing + masked-tail micro-kernel stores.
    Fast,
    /// Pre-PR-5 path: scalar gather packing + scratch-spill edge stores.
    SpillBaseline,
}

/// A GEMM input operand: a borrowed f32 slice, or a bf16 slice the panel
/// packers decode on the fly (**convert-on-pack**). The micro-kernels and
/// every accumulator stay f32 either way — bf16 storage only halves the
/// bytes the pack stage streams from memory, which is exactly the
/// bandwidth the pack-bound shapes are limited by. Decode is exact, so a
/// bf16 operand produces the same packed panel bit for bit as decoding the
/// whole operand to f32 up front.
#[derive(Clone, Copy)]
pub enum Operand<'a> {
    F32(&'a [f32]),
    Bf16(&'a [u16]),
}

impl<'a> Operand<'a> {
    /// Borrow a tensor's storage at its native dtype (no conversion).
    pub fn from_tensor(t: &'a Tensor) -> Self {
        match t.dtype() {
            DType::F32 => Operand::F32(t.data()),
            DType::Bf16 => Operand::Bf16(t.bf16_data()),
        }
    }

    /// Element count (elements, not bytes).
    pub fn len(&self) -> usize {
        match self {
            Operand::F32(v) => v.len(),
            Operand::Bf16(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sub-range view (how batched dispatch carves per-batch windows).
    pub fn slice(self, r: std::ops::Range<usize>) -> Self {
        match self {
            Operand::F32(v) => Operand::F32(&v[r]),
            Operand::Bf16(v) => Operand::Bf16(&v[r]),
        }
    }

    /// Decode into an equal-length f32 buffer (copy for f32, exact widen
    /// for bf16) — the small-product fallback that skips packing entirely.
    fn decode_into(self, dst: &mut [f32]) {
        match self {
            Operand::F32(v) => dst.copy_from_slice(v),
            Operand::Bf16(v) => simd::bf16_to_f32_sweep(v, dst),
        }
    }
}

// ---------------------------------------------------------------------------
// Packing
// ---------------------------------------------------------------------------

/// Pack `A[ic..ic+mc, pc..pc+kc]` (logical m×k indexing) into
/// `mr`-interleaved micro-panels for the active ISA: panel `r` holds rows
/// `ic+r·mr..` stored k-major, i.e.
/// `buf[r·mr·kc + p·mr + i] = α · a(ic + r·mr + i, pc + p)`, zero-padded to
/// a full `mr` rows.
///
/// The non-transposed layout is a strided gather (panel-destination stride
/// `mr` against source stride `k`), packed through the SIMD 8×8 shuffle
/// transpose ([`simd::pack_transpose`]); the transposed layout's source
/// rows are already contiguous in destination order and stay a straight
/// copy.
#[allow(clippy::too_many_arguments)]
fn pack_a(
    isa: Isa,
    gen: KernelGen,
    layout: GemmLayout,
    alpha: f32,
    a: Operand<'_>,
    m: usize,
    k: usize,
    ic: usize,
    mc: usize,
    pc: usize,
    kc: usize,
    mr: usize,
    buf: &mut [f32],
) {
    let panels = mc.div_ceil(mr);
    debug_assert!(buf.len() >= panels * mr * kc);
    for r in 0..panels {
        let row0 = ic + r * mr;
        let rows = mr.min(ic + mc - row0);
        let panel = &mut buf[r * mr * kc..(r + 1) * mr * kc];
        if layout.a_transposed() {
            // a is [k, m]: a(i, p) = a[p*m + i] — source rows are contiguous
            // in the pack destination order, so copy p-major (bf16 sources
            // decode in the same sweep; decode is exact, so both dtypes see
            // exactly one `α·x` multiply per element).
            for p in 0..kc {
                let s0 = (pc + p) * m + row0;
                let dst = &mut panel[p * mr..p * mr + mr];
                match a {
                    Operand::F32(af) => dst[..rows].copy_from_slice(&af[s0..s0 + rows]),
                    Operand::Bf16(ab) => {
                        simd::bf16_to_f32_sweep_isa(isa, &ab[s0..s0 + rows], &mut dst[..rows])
                    }
                }
                dst[rows..].fill(0.0);
                for v in dst[..rows].iter_mut() {
                    *v *= alpha;
                }
            }
        } else {
            // a is [m, k]: a(i, p) = a[i*k + p] — the gather/transpose case.
            let pack_isa = match gen {
                KernelGen::Fast => isa,
                KernelGen::SpillBaseline => Isa::Scalar,
            };
            // SAFETY: source indices stay inside `a` (`row0 + rows ≤ m`,
            // `pc + kc ≤ k`); the panel slice holds `mr·kc` elements.
            unsafe {
                match a {
                    Operand::F32(af) => simd::pack_transpose(
                        pack_isa,
                        af.as_ptr().add(row0 * k + pc),
                        k,
                        rows,
                        mr,
                        kc,
                        panel.as_mut_ptr(),
                        alpha,
                    ),
                    Operand::Bf16(ab) => simd::pack_transpose_bf16(
                        pack_isa,
                        ab.as_ptr().add(row0 * k + pc),
                        k,
                        rows,
                        mr,
                        kc,
                        panel.as_mut_ptr(),
                        alpha,
                    ),
                }
            }
        }
    }
}

/// Pack `B[pc..pc+kc, jc..jc+nc]` (logical k×n indexing) into
/// `nr`-interleaved micro-panels:
/// `buf[c·nr·kc + p·nr + j] = b(pc + p, jc + c·nr + j)`, zero-padded to a
/// full `nr` columns. The transposed layout is the strided-gather case and
/// routes through [`simd::pack_transpose`].
#[allow(clippy::too_many_arguments)]
fn pack_b(
    isa: Isa,
    gen: KernelGen,
    layout: GemmLayout,
    b: Operand<'_>,
    k: usize,
    n: usize,
    pc: usize,
    kc: usize,
    jc: usize,
    nc: usize,
    nr: usize,
    buf: &mut [f32],
) {
    let panels = nc.div_ceil(nr);
    debug_assert!(buf.len() >= panels * nr * kc);
    for c in 0..panels {
        let col0 = jc + c * nr;
        let cols = nr.min(jc + nc - col0);
        let panel = &mut buf[c * nr * kc..(c + 1) * nr * kc];
        if layout.b_transposed() {
            // b is [n, k]: b(p, j) = b[j*k + p] — the gather/transpose case.
            let pack_isa = match gen {
                KernelGen::Fast => isa,
                KernelGen::SpillBaseline => Isa::Scalar,
            };
            // SAFETY: source indices stay inside `b` (`col0 + cols ≤ n`
            // rows of length `k`, `pc + kc ≤ k`); the panel slice holds
            // `nr·kc` elements.
            unsafe {
                match b {
                    Operand::F32(bf) => simd::pack_transpose(
                        pack_isa,
                        bf.as_ptr().add(col0 * k + pc),
                        k,
                        cols,
                        nr,
                        kc,
                        panel.as_mut_ptr(),
                        1.0,
                    ),
                    Operand::Bf16(bb) => simd::pack_transpose_bf16(
                        pack_isa,
                        bb.as_ptr().add(col0 * k + pc),
                        k,
                        cols,
                        nr,
                        kc,
                        panel.as_mut_ptr(),
                        1.0,
                    ),
                }
            }
        } else {
            // b is [k, n]: b(p, j) = b[p*n + j] — contiguous source rows
            // (bf16 decodes in the copy sweep, exact).
            for p in 0..kc {
                let s0 = (pc + p) * n + col0;
                let dst = &mut panel[p * nr..p * nr + nr];
                match b {
                    Operand::F32(bf) => dst[..cols].copy_from_slice(&bf[s0..s0 + cols]),
                    Operand::Bf16(bb) => {
                        simd::bf16_to_f32_sweep_isa(isa, &bb[s0..s0 + cols], &mut dst[..cols])
                    }
                }
                dst[cols..].fill(0.0);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Serial blocked driver
// ---------------------------------------------------------------------------

/// Exclusive window onto a C tile: rows `i0..i0+mt` restricted to columns
/// `j0..j0+nt` of a row-major `[m, n]` buffer.
///
/// Holds a raw base pointer rather than a `&mut [f32]` so the 2-D parallel
/// driver can hand each task its own tile without ever creating two live
/// mutable references to overlapping memory: writes happen only through the
/// micro-kernel store, on the disjoint `mr×nr` window [`CTile::ptr_at`]
/// hands out.
///
/// Invariant (upheld by every constructor site): while a `CTile` is alive,
/// nothing else reads or writes its (row-range × column-range) window, and
/// distinct tiles' windows never overlap.
struct CTile<'a> {
    base: *mut f32,
    len: usize,
    n: usize,
    i0: usize,
    j0: usize,
    _c: std::marker::PhantomData<&'a mut [f32]>,
}

// SAFETY: a CTile is an exclusive capability over its disjoint window (see
// the invariant above), so moving it to another thread is sound; sharing
// `&CTile` is sound because all access to the window goes through
// `row(&mut self, ..)`.
unsafe impl Send for CTile<'_> {}
unsafe impl Sync for CTile<'_> {}

impl<'a> CTile<'a> {
    fn new(c: &'a mut [f32], n: usize, i0: usize, j0: usize) -> Self {
        CTile {
            base: c.as_mut_ptr(),
            len: c.len(),
            n,
            i0,
            j0,
            _c: std::marker::PhantomData,
        }
    }

    /// A sub-window over the same buffer. Caller must ensure the windows
    /// handed out are pairwise disjoint and that `self` is not used for
    /// writes while they live (the 2-D driver's tiles partition C).
    fn window(&self, i0: usize, j0: usize) -> CTile<'a> {
        CTile {
            base: self.base,
            len: self.len,
            n: self.n,
            i0,
            j0,
            _c: std::marker::PhantomData,
        }
    }

    /// Pointer to tile-relative element `(i, j)`, checked to head an
    /// exclusive `rows × cols` window (row stride = the buffer's `n`).
    ///
    /// `&mut self` plus the tile invariant make the returned window safe
    /// for the micro-kernel to read and write: callers keep
    /// `i + rows <= mt`, `j + cols <= nt`, and never hold two windows of
    /// one tile at once.
    #[inline]
    fn ptr_at(&mut self, i: usize, j: usize, rows: usize, cols: usize) -> *mut f32 {
        let start = (self.i0 + i) * self.n + self.j0 + j;
        debug_assert!(rows > 0 && cols > 0);
        debug_assert!(start + (rows - 1) * self.n + cols <= self.len);
        // SAFETY: `start` is in-bounds (checked above against the buffer
        // length captured at construction).
        unsafe { self.base.add(start) }
    }
}

/// Serial blocked GEMM onto one C tile, over depth range `p0..p1`.
///
/// `a`/`b` are always the *full* operand buffers; the tile/depth windows
/// select the sub-problem, which is what the split-K and 2-D-tile parallel
/// drivers are built from.
///
/// The [`Epilogue`] rides in the micro-kernel store of the *first* depth
/// block (each output element is stored exactly once per depth block), so
/// bias adds and overwrites cost no extra pass over the output.
#[allow(clippy::too_many_arguments)]
fn gemm_tile_serial(
    isa: Isa,
    gen: KernelGen,
    layout: GemmLayout,
    alpha: f32,
    a: Operand<'_>,
    b: Operand<'_>,
    epi: Epilogue<'_>,
    tile: &mut CTile<'_>,
    m: usize,
    k: usize,
    n: usize,
    (i0, mt): (usize, usize),
    (j0, nt): (usize, usize),
    (p0, p1): (usize, usize),
) {
    debug_assert_eq!((tile.i0, tile.j0), (i0, j0));
    let (mr_t, nr_t) = simd::gemm_tile_shape(isa);
    // A trailing block remnant thinner than one micro-tile is absorbed
    // into the preceding block: a 1-column jc block would otherwise
    // re-pack the whole A panel set for almost no output, and a few-deep
    // kc block would re-stream all of C through load-add-store for a
    // couple of FMAs per element. Absorption changes only the blocking
    // (panel buffers grow by ≤ one micro-tile / one granule), never the
    // per-element accumulation *within* the serial k-major order of a
    // given schedule — but it IS part of the shape-derived schedule, so
    // every fast path (serial, 2-D tiles, split-K replay) shares this
    // loop and stays bitwise consistent. The spill baseline keeps the
    // pre-PR blocking so the `gemm_ragged_*` BENCH before-side is
    // faithful (kc absorption regroups depth partial sums, so baseline
    // parity tests must stay below one KC block).
    let absorb = matches!(gen, KernelGen::Fast);
    const KC_ABSORB: usize = 32;
    // Pack panels live in the per-thread scratch arena: packing fully
    // overwrites every region the micro-kernel reads, so recycled contents
    // never leak through, and steady-state products allocate nothing.
    let kc_max = KC + KC_ABSORB - 1;
    with_scratch(MC.div_ceil(mr_t) * mr_t * kc_max, |pa| {
        with_scratch((NC.div_ceil(nr_t) + 1) * nr_t * kc_max, |pb| {
            let mut jc = 0;
            while jc < nt {
                let mut nc = NC.min(nt - jc);
                if absorb && nt - jc - nc < nr_t {
                    nc = nt - jc;
                }
                let mut pc = p0;
                while pc < p1 {
                    let mut kc = KC.min(p1 - pc);
                    if absorb && p1 - pc - kc < KC_ABSORB {
                        kc = p1 - pc;
                    }
                    // The epilogue applies exactly once, on the first depth
                    // block; later blocks accumulate.
                    let epi_now = if pc == p0 { epi } else { Epilogue::Add };
                    pack_b(isa, gen, layout, b, k, n, pc, kc, j0 + jc, nc, nr_t, pb);
                    let mut ic = 0;
                    while ic < mt {
                        let mc = MC.min(mt - ic);
                        pack_a(isa, gen, layout, alpha, a, m, k, i0 + ic, mc, pc, kc, mr_t, pa);
                        for jr in 0..nc.div_ceil(nr_t) {
                            let bp = &pb[jr * nr_t * kc..(jr + 1) * nr_t * kc];
                            let nr = nr_t.min(nc - jr * nr_t);
                            for ir in 0..mc.div_ceil(mr_t) {
                                let ap = &pa[ir * mr_t * kc..(ir + 1) * mr_t * kc];
                                let mr = mr_t.min(mc - ir * mr_t);
                                // The tile-local epilogue carries the bias
                                // slice pre-offset to this micro-tile's
                                // first column.
                                let micro_epi = match epi_now {
                                    Epilogue::Add => MicroEpi::Add,
                                    Epilogue::AddBias(bias) => {
                                        let col0 = j0 + jc + jr * nr_t;
                                        MicroEpi::AddBias(&bias[col0..col0 + nr])
                                    }
                                    Epilogue::Assign => MicroEpi::Assign,
                                };
                                let cptr =
                                    tile.ptr_at(ic + ir * mr_t, jc + jr * nr_t, mr, nr);
                                // SAFETY: `cptr` heads an exclusive mr×nr
                                // window of this tile (checked by
                                // `ptr_at`); panels hold kc·mr_t / kc·nr_t
                                // packed elements; `isa` came from
                                // dispatch, which only yields runnable
                                // ISAs.
                                unsafe {
                                    match gen {
                                        KernelGen::Fast => simd::gemm_microkernel(
                                            isa, kc, ap, bp, cptr, n, mr, nr, micro_epi,
                                        ),
                                        KernelGen::SpillBaseline => simd::gemm_microkernel_spill(
                                            isa, kc, ap, bp, cptr, n, mr, nr, micro_epi,
                                        ),
                                    }
                                }
                            }
                        }
                        ic += mc;
                    }
                    pc += kc;
                }
                jc += nc;
            }
        })
    });
}

/// [`gemm_small`] over dtype-tagged operands: bf16 inputs are decoded
/// (exactly) into pooled scratch first — products this small are
/// unit-test-sized, so the decode is noise and the row-major loops stay
/// monomorphic f32.
#[allow(clippy::too_many_arguments)]
fn gemm_small_op(
    layout: GemmLayout,
    alpha: f32,
    a: Operand<'_>,
    b: Operand<'_>,
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    if let (Operand::F32(af), Operand::F32(bf)) = (a, b) {
        return gemm_small(layout, alpha, af, bf, c, m, k, n);
    }
    with_scratch(a.len() + b.len(), |buf| {
        let (ab, bb) = buf.split_at_mut(a.len());
        a.decode_into(ab);
        b.decode_into(bb);
        gemm_small(layout, alpha, ab, bb, c, m, k, n)
    })
}

/// Direct row-major loops for operands too small to amortize packing.
#[allow(clippy::too_many_arguments)]
fn gemm_small(layout: GemmLayout, alpha: f32, a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    match layout {
        GemmLayout::NN => {
            for (i, c_row) in c.chunks_mut(n).enumerate() {
                for p in 0..k {
                    let aip = alpha * a[i * k + p];
                    let b_row = &b[p * n..(p + 1) * n];
                    for (cv, bv) in c_row.iter_mut().zip(b_row) {
                        *cv += aip * bv;
                    }
                }
            }
        }
        GemmLayout::NT => {
            for (i, c_row) in c.chunks_mut(n).enumerate() {
                let a_row = &a[i * k..(i + 1) * k];
                for (j, cv) in c_row.iter_mut().enumerate() {
                    let b_row = &b[j * k..(j + 1) * k];
                    let mut s = 0.0f32;
                    for (av, bv) in a_row.iter().zip(b_row) {
                        s += av * bv;
                    }
                    *cv += alpha * s;
                }
            }
        }
        GemmLayout::TN => {
            for (i, c_row) in c.chunks_mut(n).enumerate() {
                for p in 0..k {
                    let aip = alpha * a[p * m + i];
                    let b_row = &b[p * n..(p + 1) * n];
                    for (cv, bv) in c_row.iter_mut().zip(b_row) {
                        *cv += aip * bv;
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Parallel drivers
// ---------------------------------------------------------------------------

/// `C[m,n] += α · op(A) · op(B)` — the single entry point every matmul/bmm
/// variant and autograd adjoint routes through.
#[allow(clippy::too_many_arguments)]
pub fn gemm(layout: GemmLayout, alpha: f32, a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    gemm_dispatch(layout, alpha, Operand::F32(a), Operand::F32(b), Epilogue::Add, c, m, k, n);
}

/// [`gemm`] over dtype-tagged operands: bf16 inputs run convert-on-pack
/// (half the pack bytes, identical f32 accumulation); the output is always
/// f32.
#[allow(clippy::too_many_arguments)]
pub fn gemm_op(
    layout: GemmLayout,
    alpha: f32,
    a: Operand<'_>,
    b: Operand<'_>,
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    gemm_dispatch(layout, alpha, a, b, Epilogue::Add, c, m, k, n);
}

/// `C[m,n] += α · op(A) · op(B) + bias` with the `[n]` bias row folded into
/// the micro-kernel store (the Linear-layer forward), so the broadcast add
/// never costs a second pass over the output. The bias is added exactly
/// once per output element, on top of whatever `c` already holds.
#[allow(clippy::too_many_arguments)]
pub fn gemm_bias(layout: GemmLayout, alpha: f32, a: &[f32], b: &[f32], bias: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    gemm_bias_op(layout, alpha, Operand::F32(a), Operand::F32(b), bias, c, m, k, n);
}

/// [`gemm_bias`] over dtype-tagged operands (the bias and output stay f32).
#[allow(clippy::too_many_arguments)]
pub fn gemm_bias_op(
    layout: GemmLayout,
    alpha: f32,
    a: Operand<'_>,
    b: Operand<'_>,
    bias: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    assert_eq!(bias.len(), n, "bias len {} vs n {n}", bias.len());
    if k == 0 {
        // Degenerate product: the bias contract still holds.
        for row in c.chunks_mut(n) {
            for (cv, &bv) in row.iter_mut().zip(bias) {
                *cv += bv;
            }
        }
        return;
    }
    gemm_dispatch(layout, alpha, a, b, Epilogue::AddBias(bias), c, m, k, n);
}

/// Prepare `c` so the plain accumulate paths honor `epi`: small/ split-K
/// code always does `C += …`, so `Assign` zeroes the (scratch) output
/// first and `AddBias` folds the bias in as the initial value.
fn epi_pre_pass(epi: Epilogue<'_>, c: &mut [f32], n: usize) {
    match epi {
        Epilogue::Add => {}
        Epilogue::AddBias(bias) => {
            for row in c.chunks_mut(n) {
                for (cv, &bv) in row.iter_mut().zip(bias) {
                    *cv += bv;
                }
            }
        }
        Epilogue::Assign => c.fill(0.0),
    }
}

/// Shared driver behind [`gemm`] / [`gemm_bias`] / the attention tiles.
#[allow(clippy::too_many_arguments)]
fn gemm_dispatch(
    layout: GemmLayout,
    alpha: f32,
    a: Operand<'_>,
    b: Operand<'_>,
    epi: Epilogue<'_>,
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    debug_assert_eq!(c.len(), m * n);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let flops = m * n * k;
    if flops < SMALL_FLOPS {
        // Operands too small for the packed path; the epilogue pre-pass
        // over a sub-32k-element output is noise.
        epi_pre_pass(epi, c, n);
        return gemm_small_op(layout, alpha, a, b, c, m, k, n);
    }
    // ISA resolved once per product; every tile of this call uses the same
    // micro-kernel and tile shape.
    let isa = simd::active_isa();
    if flops < PAR_FLOPS || rayon::current_num_threads() == 1 {
        return gemm_serial(isa, layout, alpha, a, b, epi, c, m, k, n);
    }

    let row_blocks = m.div_ceil(MC);
    let col_blocks = n.div_ceil(NC);
    // Any tile-level parallelism beats none; split-K only wins when the
    // tile grid is a single tile but the depth is long.
    if row_blocks * col_blocks >= 2 {
        gemm_parallel_2d(isa, layout, alpha, a, b, epi, c, m, k, n, row_blocks, col_blocks);
    } else if k >= 4 * KC {
        // Skinny split-K outputs are tiny (the path only triggers when the
        // C tile grid is a single tile), so the epilogue stays out of the
        // per-task partials and costs one sweep of a small buffer.
        epi_pre_pass(epi, c, n);
        gemm_parallel_split_k(isa, layout, alpha, a, b, c, m, k, n);
    } else {
        gemm_serial(isa, layout, alpha, a, b, epi, c, m, k, n);
    }
}

/// Serial blocked product over the whole output.
#[allow(clippy::too_many_arguments)]
fn gemm_serial(isa: Isa, layout: GemmLayout, alpha: f32, a: Operand<'_>, b: Operand<'_>, epi: Epilogue<'_>, c: &mut [f32], m: usize, k: usize, n: usize) {
    let mut tile = CTile::new(c, n, 0, 0);
    gemm_tile_serial(isa, KernelGen::Fast, layout, alpha, a, b, epi, &mut tile, m, k, n, (0, m), (0, n), (0, k));
}

/// 2-D tiling over (row-block × column-block) of C. Tiles write disjoint
/// C regions; each task packs its own panels into thread-local buffers.
#[allow(clippy::too_many_arguments)]
fn gemm_parallel_2d(
    isa: Isa,
    layout: GemmLayout,
    alpha: f32,
    a: Operand<'_>,
    b: Operand<'_>,
    epi: Epilogue<'_>,
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    row_blocks: usize,
    col_blocks: usize,
) {
    // One prototype tile borrows `c` for the whole parallel region; each
    // task clones it with its own disjoint window. Writes only ever happen
    // through the micro-kernel store on per-task disjoint windows (see the
    // `CTile` invariant).
    let proto = CTile::new(c, n, 0, 0);
    (0..row_blocks * col_blocks).into_par_iter().for_each(|t| {
        let (rb, cb) = (t / col_blocks, t % col_blocks);
        let i0 = rb * MC;
        let mt = MC.min(m - i0);
        let j0 = cb * NC;
        let nt = NC.min(n - j0);
        // Tiles partition C: distinct `t` ⇒ disjoint (row-range ×
        // col-range) windows, and the parallel call joins before `c`'s
        // borrow ends.
        let mut tile = proto.window(i0, j0);
        gemm_tile_serial(isa, KernelGen::Fast, layout, alpha, a, b, epi, &mut tile, m, k, n, (i0, mt), (j0, nt), (0, k));
    });
}

/// Split-K: partition the depth across tasks, each accumulating into its
/// own private `m×n` partial, then reduce. Used for skinny outputs (e.g.
/// `[4, 1M] × [1M, 8]`) where the C tile grid has too little parallelism.
#[allow(clippy::too_many_arguments)]
fn gemm_parallel_split_k(
    isa: Isa,
    layout: GemmLayout,
    alpha: f32,
    a: Operand<'_>,
    b: Operand<'_>,
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    // The chunk count is derived from the problem size only — never the
    // thread count — so the partial-sum grouping (and therefore the f32
    // result, bit for bit) is identical on every machine. The fixed cap
    // bounds the partial-buffer memory.
    const SPLIT_K_GRAIN: usize = 4 * KC;
    const SPLIT_K_MAX_CHUNKS: usize = 16;
    let chunks = k.div_ceil(SPLIT_K_GRAIN).min(SPLIT_K_MAX_CHUNKS);
    let per = k.div_ceil(chunks);
    // One pooled buffer holds every task's partial (zeroed — the tasks
    // accumulate); the serial chunk-order fold below is what keeps the
    // result bitwise thread-count-independent.
    with_scratch_zeroed(chunks * m * n, |partials| {
        partials.par_chunks_mut(m * n).enumerate().for_each(|(t, partial)| {
            let p0 = t * per;
            let p1 = ((t + 1) * per).min(k);
            let mut tile = CTile::new(partial, n, 0, 0);
            gemm_tile_serial(isa, KernelGen::Fast, layout, alpha, a, b, Epilogue::Add, &mut tile, m, k, n, (0, m), (0, n), (p0, p1));
        });
        for partial in partials.chunks(m * n) {
            for (cv, pv) in c.iter_mut().zip(partial) {
                *cv += pv;
            }
        }
    });
}

// ---------------------------------------------------------------------------
// Tensor entry points
// ---------------------------------------------------------------------------

/// `[m,k] × [k,n] -> [m,n]`. Higher-rank `a` is folded to 2-D over its last
/// axis. Either operand may be bf16-stored (convert-on-pack); the result is
/// always f32.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let a2 = a.as_2d();
    assert_eq!(b.ndim(), 2, "matmul rhs must be 2-D, got {}", b.shape());
    let (m, k) = (a2.dims()[0], a2.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    assert_eq!(k, k2, "matmul inner dims {} vs {}", a.shape(), b.shape());
    let mut c = vec![0.0f32; m * n];
    gemm_op(GemmLayout::NN, 1.0, Operand::from_tensor(&a2), Operand::from_tensor(b), &mut c, m, k, n);
    // Preserve leading batch axes of `a`.
    let mut out_dims = a.dims().to_vec();
    *out_dims.last_mut().unwrap() = n;
    Tensor::from_vec(c, Shape::new(&out_dims))
}

/// `[m,k] × [n,k]ᵀ -> [m,n]` without materializing the transpose.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    let a2 = a.as_2d();
    assert_eq!(b.ndim(), 2);
    let (m, k) = (a2.dims()[0], a2.dims()[1]);
    let (n, k2) = (b.dims()[0], b.dims()[1]);
    assert_eq!(k, k2, "matmul_nt inner dims {} vs {}", a.shape(), b.shape());
    let mut c = vec![0.0f32; m * n];
    gemm_op(GemmLayout::NT, 1.0, Operand::from_tensor(&a2), Operand::from_tensor(b), &mut c, m, k, n);
    let mut out_dims = a.dims().to_vec();
    *out_dims.last_mut().unwrap() = n;
    Tensor::from_vec(c, Shape::new(&out_dims))
}

/// `[k,m]ᵀ × [k,n] -> [m,n]` without materializing the transpose.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    let a2 = a.as_2d();
    let b2 = b.as_2d();
    let (k, m) = (a2.dims()[0], a2.dims()[1]);
    let (k2, n) = (b2.dims()[0], b2.dims()[1]);
    assert_eq!(k, k2, "matmul_tn inner dims {} vs {}", a.shape(), b.shape());
    let mut c = vec![0.0f32; m * n];
    gemm_op(GemmLayout::TN, 1.0, Operand::from_tensor(&a2), Operand::from_tensor(&b2), &mut c, m, k, n);
    Tensor::from_vec(c, [m, n])
}

fn bmm_dims(a: &Tensor, b: &Tensor) -> (usize, usize, usize, usize, usize, usize) {
    assert_eq!(a.ndim(), 3, "bmm lhs must be 3-D, got {}", a.shape());
    assert_eq!(b.ndim(), 3, "bmm rhs must be 3-D, got {}", b.shape());
    let (ba, m, ka) = (a.dims()[0], a.dims()[1], a.dims()[2]);
    let (bb, d1, d2) = (b.dims()[0], b.dims()[1], b.dims()[2]);
    assert_eq!(ba, bb, "bmm batch dims {} vs {}", a.shape(), b.shape());
    (ba, m, ka, bb, d1, d2)
}

// ---------------------------------------------------------------------------
// Pool-aware batched dispatch
// ---------------------------------------------------------------------------

/// One product of a heterogeneous GEMM batch:
/// `C[c_off .. c_off + m·n] += α · op(A) · op(B)` (row-major `[m, n]`
/// window of the shared output buffer).
pub(crate) struct GemmJob<'a> {
    pub layout: GemmLayout,
    pub alpha: f32,
    pub a: Operand<'a>,
    pub b: Operand<'a>,
    pub m: usize,
    pub k: usize,
    pub n: usize,
    /// Flat element offset of this job's output window; windows of
    /// distinct jobs must be pairwise disjoint.
    pub c_off: usize,
}

/// Tasks a job contributes to the flattened grid: its C tile grid, or a
/// single task when the product is too small for the packed path (or
/// degenerate).
fn job_tiles(j: &GemmJob<'_>) -> usize {
    if j.m == 0 || j.n == 0 {
        0
    } else if j.k == 0 || j.m * j.n * j.k < SMALL_FLOPS {
        1
    } else {
        j.m.div_ceil(MC) * j.n.div_ceil(NC)
    }
}

/// Shared mutable output buffer for the batched dispatcher: tasks write
/// pairwise-disjoint windows (distinct jobs by the `c_off` contract,
/// tiles within a job by the C-tile partition), the same exclusive-window
/// argument as [`CTile`].
struct RawOut {
    base: *mut f32,
    len: usize,
}

// SAFETY: see the disjoint-window argument on the struct.
unsafe impl Send for RawOut {}
unsafe impl Sync for RawOut {}

impl RawOut {
    /// Accessors so closures capture the whole (Sync) wrapper rather than
    /// disjointly capturing the raw pointer field.
    fn base(&self) -> *mut f32 {
        self.base
    }

    fn len(&self) -> usize {
        self.len
    }
}

/// Run a heterogeneous batch of GEMM jobs over one shared output buffer.
///
/// Every job's (row-block × column-block) C tile grid is flattened into a
/// single task queue ([`crate::par::FlatGrid`]) and dispatched over the
/// pool in one parallel region, so batch-level and intra-GEMM parallelism
/// blend instead of competing: a ragged batch (hierarchical-aggregation
/// subtree products, attention heads of uneven length) keeps every worker
/// busy even when no single product has enough tiles and no batch has
/// enough members. Tiny jobs ride along as single tasks on the direct
/// row-major loops.
///
/// Each tile runs the identical serial blocked code over the full depth
/// regardless of which worker claims it, so the output is **bitwise
/// identical at any thread count** to replaying the jobs one by one
/// (`batched_dispatcher_bitwise_matches_serial_replay` pins this).
pub(crate) fn gemm_batch_into(jobs: &[GemmJob<'_>], c: &mut [f32]) {
    debug_assert!(jobs.iter().all(|j| j.c_off + j.m * j.n <= c.len()));
    let total_flops: usize = jobs.iter().map(|j| j.m * j.n * j.k).sum();
    if total_flops < PAR_FLOPS || rayon::current_num_threads() == 1 {
        for j in jobs {
            gemm_serial_or_small_op(
                j.layout,
                j.alpha,
                j.a,
                j.b,
                Epilogue::Add,
                &mut c[j.c_off..j.c_off + j.m * j.n],
                j.m,
                j.k,
                j.n,
            );
        }
        return;
    }
    let isa = simd::active_isa();
    let grid = crate::par::FlatGrid::new(jobs.iter().map(job_tiles));
    let out = RawOut { base: c.as_mut_ptr(), len: c.len() };
    (0..grid.total()).into_par_iter().for_each(|t| {
        let (ji, local) = grid.locate(t);
        let j = &jobs[ji];
        let (m, k, n) = (j.m, j.k, j.n);
        if k == 0 || m * n * k < SMALL_FLOPS {
            // The job's single task owns its whole window exclusively.
            // SAFETY: disjoint by the `c_off` contract; in-bounds by the
            // debug assert above (offsets come from callers that sized `c`).
            let cw = unsafe { std::slice::from_raw_parts_mut(out.base().add(j.c_off), m * n) };
            if k > 0 {
                gemm_small_op(j.layout, j.alpha, j.a, j.b, cw, m, k, n);
            }
        } else {
            let col_blocks = n.div_ceil(NC);
            let (rb, cb) = (local / col_blocks, local % col_blocks);
            let i0 = rb * MC;
            let mt = MC.min(m - i0);
            let j0 = cb * NC;
            let nt = NC.min(n - j0);
            // SAFETY: tiles partition the job's window and jobs' windows
            // are disjoint, so this CTile is an exclusive capability; the
            // parallel region joins before `c`'s borrow ends.
            let mut tile = CTile {
                base: unsafe { out.base().add(j.c_off) },
                len: out.len() - j.c_off,
                n,
                i0,
                j0,
                _c: std::marker::PhantomData,
            };
            gemm_tile_serial(
                isa, KernelGen::Fast, j.layout, j.alpha, j.a, j.b, Epilogue::Add,
                &mut tile, m, k, n, (i0, mt), (j0, nt), (0, k),
            );
        }
    });
}

/// Shared batched driver: per-batch `C_b += α · op(A_b) · op(B_b)`,
/// dispatched through the flattened (batch × tile) grid of
/// [`gemm_batch_into`]. A single-batch call falls back to the full [`gemm`]
/// dispatch so skinny-deep shapes keep their split-K path.
#[allow(clippy::too_many_arguments)]
fn bmm_driver(
    layout: GemmLayout,
    alpha: f32,
    a: &Tensor,
    b: &Tensor,
    bs: usize,
    m: usize,
    k: usize,
    n: usize,
) -> Tensor {
    let (a_sz, b_sz) = (m * k, k * n);
    let mut c = vec![0.0f32; bs * m * n];
    let (ao, bo) = (Operand::from_tensor(a), Operand::from_tensor(b));
    if bs == 1 {
        gemm_op(layout, alpha, ao, bo, &mut c, m, k, n);
    } else {
        let jobs: Vec<GemmJob<'_>> = (0..bs)
            .map(|bi| GemmJob {
                layout,
                alpha,
                a: ao.slice(bi * a_sz..(bi + 1) * a_sz),
                b: bo.slice(bi * b_sz..(bi + 1) * b_sz),
                m,
                k,
                n,
                c_off: bi * m * n,
            })
            .collect();
        gemm_batch_into(&jobs, &mut c);
    }
    Tensor::from_vec(c, [bs, m, n])
}

/// Per-batch / per-tile body that never spawns nested parallelism: used by
/// the batched parallel loop and by the flash-attention tile kernels, whose
/// drivers already own the task-level fan-out. The epilogue lets the
/// attention tiles reuse scratch score buffers without a `fill(0.0)`
/// pre-pass (`Epilogue::Assign` overwrites in the micro-kernel store).
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_serial_or_small(layout: GemmLayout, alpha: f32, a: &[f32], b: &[f32], epi: Epilogue<'_>, c: &mut [f32], m: usize, k: usize, n: usize) {
    gemm_serial_or_small_op(layout, alpha, Operand::F32(a), Operand::F32(b), epi, c, m, k, n)
}

/// [`gemm_serial_or_small`] over dtype-tagged operands (the batched
/// dispatcher's per-tile body).
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_serial_or_small_op(layout: GemmLayout, alpha: f32, a: Operand<'_>, b: Operand<'_>, epi: Epilogue<'_>, c: &mut [f32], m: usize, k: usize, n: usize) {
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        // The product is zero but the epilogue contract still holds —
        // Assign must clear a reused scratch buffer, AddBias must add.
        return epi_pre_pass(epi, c, n);
    }
    if m * n * k < SMALL_FLOPS {
        epi_pre_pass(epi, c, n);
        gemm_small_op(layout, alpha, a, b, c, m, k, n);
    } else {
        gemm_serial(simd::active_isa(), layout, alpha, a, b, epi, c, m, k, n);
    }
}

/// Batched `[B,m,k] × [B,k,n] -> [B,m,n]`.
pub fn bmm(a: &Tensor, b: &Tensor) -> Tensor {
    bmm_scaled(a, b, 1.0)
}

/// Batched `[B,m,k] × [B,k,n] -> α·[B,m,n]` (scale folded into packing).
pub fn bmm_scaled(a: &Tensor, b: &Tensor, alpha: f32) -> Tensor {
    let (bs, m, k, _, k2, n) = bmm_dims(a, b);
    assert_eq!(k, k2, "bmm inner dims {} vs {}", a.shape(), b.shape());
    bmm_driver(GemmLayout::NN, alpha, a, b, bs, m, k, n)
}

/// Batched `[B,m,k] × [B,n,k]ᵀ -> [B,m,n]` (attention scores `Q·Kᵀ`).
pub fn bmm_nt(a: &Tensor, b: &Tensor) -> Tensor {
    bmm_nt_scaled(a, b, 1.0)
}

/// Batched `α · Q·Kᵀ`: the fused attention-score kernel (`1/√d` never
/// materializes a scaled copy — it rides along in the A panel packing).
pub fn bmm_nt_scaled(a: &Tensor, b: &Tensor, alpha: f32) -> Tensor {
    let (bs, m, k, _, n, k2) = bmm_dims(a, b);
    assert_eq!(k, k2, "bmm_nt inner dims {} vs {}", a.shape(), b.shape());
    bmm_driver(GemmLayout::NT, alpha, a, b, bs, m, k, n)
}

/// Batched `[B,k,m]ᵀ × [B,k,n] -> [B,m,n]` (attention backward `Aᵀ·dY`).
pub fn bmm_tn(a: &Tensor, b: &Tensor) -> Tensor {
    bmm_tn_scaled(a, b, 1.0)
}

/// Batched `α · Aᵀ·B` (backward of the scaled-score kernel).
pub fn bmm_tn_scaled(a: &Tensor, b: &Tensor, alpha: f32) -> Tensor {
    let (bs, k, m, _, k2, n) = bmm_dims(a, b);
    assert_eq!(k, k2, "bmm_tn inner dims {} vs {}", a.shape(), b.shape());
    bmm_driver(GemmLayout::TN, alpha, a, b, bs, m, k, n)
}

// ---------------------------------------------------------------------------
// Bench hooks
// ---------------------------------------------------------------------------

/// Bench-only access to the pre-PR kernel generation and the pack
/// internals — **not a stable API**. The `gemm_ragged_*` entries in
/// `BENCH_kernels.json` need the edge-spill baseline still runnable so the
/// before/after comparison measures this PR's change and nothing else.
#[doc(hidden)]
pub mod bench_api {
    use super::*;

    /// Whole-product serial blocked GEMM on the pre-masked-tail path
    /// (scalar gather packing + scratch-spill edge stores): the "before"
    /// side of the ragged BENCH entries.
    #[allow(clippy::too_many_arguments)]
    pub fn gemm_edge_spill_baseline(
        layout: GemmLayout,
        alpha: f32,
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
    ) {
        if m == 0 || n == 0 || k == 0 {
            return;
        }
        let isa = simd::active_isa();
        let mut tile = CTile::new(c, n, 0, 0);
        gemm_tile_serial(
            isa, KernelGen::SpillBaseline, layout, alpha, Operand::F32(a), Operand::F32(b),
            Epilogue::Add, &mut tile, m, k, n, (0, m), (0, n), (0, k),
        );
    }

    /// The fast path pinned to the serial blocked driver: the matching
    /// "after" side for [`gemm_edge_spill_baseline`], so the
    /// `gemm_ragged_*` BENCH ratios isolate the kernel rework on
    /// multi-core hosts too (the public `matmul` would otherwise
    /// parallelize while the baseline stays serial).
    #[allow(clippy::too_many_arguments)]
    pub fn gemm_fast_serial(
        layout: GemmLayout,
        alpha: f32,
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
    ) {
        if m == 0 || n == 0 || k == 0 {
            return;
        }
        gemm_serial(simd::active_isa(), layout, alpha, Operand::F32(a), Operand::F32(b), Epilogue::Add, c, m, k, n);
    }

    /// [`gemm_fast_serial`] over dtype-tagged operands: the bf16
    /// convert-on-pack side of the `bf16` BENCH entries (same serial
    /// blocked driver and f32 accumulation — only the pack-stage bytes
    /// differ).
    #[allow(clippy::too_many_arguments)]
    pub fn gemm_fast_serial_op(
        layout: GemmLayout,
        alpha: f32,
        a: Operand<'_>,
        b: Operand<'_>,
        c: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
    ) {
        if m == 0 || n == 0 || k == 0 {
            return;
        }
        gemm_serial(simd::active_isa(), layout, alpha, a, b, Epilogue::Add, c, m, k, n);
    }

    /// Pack the first `MC×KC` A block of a row-major `[m, k]` operand (the
    /// strided-gather case) on the scalar or SIMD path. `buf` must hold
    /// `MC.div_ceil(mr)·mr·KC` elements with `(mr, _) = gemm_tile_shape`;
    /// returns the packed element count so callers can report pack
    /// bandwidth.
    pub fn pack_a_block(simd_pack: bool, a: &[f32], m: usize, k: usize, buf: &mut [f32]) -> usize {
        let isa = simd::active_isa();
        let (mr, _) = simd::gemm_tile_shape(isa);
        let gen = if simd_pack { KernelGen::Fast } else { KernelGen::SpillBaseline };
        let (mc, kc) = (MC.min(m), KC.min(k));
        pack_a(isa, gen, GemmLayout::NN, 1.0, Operand::F32(a), m, k, 0, mc, 0, kc, mr, buf);
        mc * kc
    }

    /// Scratch size [`pack_a_block`] needs for the active ISA.
    pub fn pack_a_buf_len() -> usize {
        let (mr, _) = simd::gemm_tile_shape(simd::active_isa());
        MC.div_ceil(mr) * mr * KC
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn naive_matmul(a: &Tensor, b: &Tensor) -> Vec<f32> {
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let n = b.dims()[1];
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for p in 0..k {
                    s += a.at(i * k + p) * b.at(p * n + j);
                }
                c[i * n + j] = s;
            }
        }
        c
    }

    #[test]
    fn matmul_matches_naive() {
        let mut rng = Rng::new(1);
        let a = Tensor::randn([7, 5], 1.0, &mut rng);
        let b = Tensor::randn([5, 9], 1.0, &mut rng);
        let c = matmul(&a, &b);
        let expect = naive_matmul(&a, &b);
        for (x, y) in c.data().iter().zip(&expect) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_identity() {
        let mut rng = Rng::new(2);
        let a = Tensor::randn([4, 4], 1.0, &mut rng);
        let mut eye = vec![0.0; 16];
        for i in 0..4 {
            eye[i * 4 + i] = 1.0;
        }
        let id = Tensor::from_vec(eye, [4, 4]);
        let c = matmul(&a, &id);
        assert!(a.max_abs_diff(&c) < 1e-6);
    }

    #[test]
    fn nt_equals_nn_with_transposed_b() {
        let mut rng = Rng::new(3);
        let a = Tensor::randn([6, 8], 1.0, &mut rng);
        let bt = Tensor::randn([10, 8], 1.0, &mut rng); // b = btᵀ : [8,10]
        let via_nt = matmul_nt(&a, &bt);
        // materialize bᵀ manually
        let mut b = vec![0.0; 80];
        for i in 0..10 {
            for j in 0..8 {
                b[j * 10 + i] = bt.at(i * 8 + j);
            }
        }
        let via_nn = matmul(&a, &Tensor::from_vec(b, [8, 10]));
        assert!(via_nt.max_abs_diff(&via_nn) < 1e-4);
    }

    #[test]
    fn tn_equals_nn_with_transposed_a() {
        let mut rng = Rng::new(4);
        let at = Tensor::randn([8, 6], 1.0, &mut rng); // a = atᵀ : [6,8]
        let b = Tensor::randn([8, 5], 1.0, &mut rng);
        let via_tn = matmul_tn(&at, &b);
        let mut a = vec![0.0; 48];
        for i in 0..8 {
            for j in 0..6 {
                a[j * 8 + i] = at.at(i * 6 + j);
            }
        }
        let via_nn = matmul(&Tensor::from_vec(a, [6, 8]), &b);
        assert!(via_tn.max_abs_diff(&via_nn) < 1e-4);
    }

    #[test]
    fn bmm_matches_per_slice_matmul() {
        let mut rng = Rng::new(5);
        let a = Tensor::randn([3, 4, 6], 1.0, &mut rng);
        let b = Tensor::randn([3, 6, 5], 1.0, &mut rng);
        let c = bmm(&a, &b);
        for bi in 0..3 {
            let a_s = Tensor::from_vec(a.data()[bi * 24..(bi + 1) * 24].to_vec(), [4, 6]);
            let b_s = Tensor::from_vec(b.data()[bi * 30..(bi + 1) * 30].to_vec(), [6, 5]);
            let c_s = matmul(&a_s, &b_s);
            let got = &c.data()[bi * 20..(bi + 1) * 20];
            for (x, y) in got.iter().zip(c_s.data()) {
                assert!((x - y).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn bmm_nt_scores_shape_and_symmetry() {
        let mut rng = Rng::new(6);
        let q = Tensor::randn([2, 5, 4], 1.0, &mut rng);
        let s = bmm_nt(&q, &q);
        assert_eq!(s.dims(), &[2, 5, 5]);
        // q·qᵀ is symmetric per batch
        for b in 0..2 {
            for i in 0..5 {
                for j in 0..5 {
                    let x = s.at(b * 25 + i * 5 + j);
                    let y = s.at(b * 25 + j * 5 + i);
                    assert!((x - y).abs() < 1e-5);
                }
            }
        }
    }

    #[test]
    fn batched_lhs_matmul_folds_leading_axes() {
        let mut rng = Rng::new(7);
        let a = Tensor::randn([2, 3, 4], 1.0, &mut rng);
        let w = Tensor::randn([4, 6], 1.0, &mut rng);
        let c = matmul(&a, &w);
        assert_eq!(c.dims(), &[2, 3, 6]);
    }

    #[test]
    fn large_parallel_path_consistent_with_small() {
        let mut rng = Rng::new(8);
        let a = Tensor::randn([300, 64], 1.0, &mut rng);
        let b = Tensor::randn([64, 128], 1.0, &mut rng);
        let big = matmul(&a, &b);
        // spot-check a few entries against naive dot
        for &(i, j) in &[(0usize, 0usize), (7, 100), (299, 127), (150, 64)] {
            let mut s = 0.0;
            for p in 0..64 {
                s += a.at(i * 64 + p) * b.at(p * 128 + j);
            }
            assert!((big.at(i * 128 + j) - s).abs() < 1e-3);
        }
    }

    // ---- blocked-kernel edge shapes -----------------------------------

    /// Reference product via explicit index arithmetic for any layout.
    fn reference(layout: GemmLayout, a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut c = vec![0.0f64; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0f64;
                for p in 0..k {
                    let av = match layout {
                        GemmLayout::TN => a[p * m + i],
                        _ => a[i * k + p],
                    } as f64;
                    let bv = match layout {
                        GemmLayout::NT => b[j * k + p],
                        _ => b[p * n + j],
                    } as f64;
                    s += av * bv;
                }
                c[i * n + j] = s;
            }
        }
        c.into_iter().map(|x| x as f32).collect()
    }

    fn check_layout(layout: GemmLayout, m: usize, k: usize, n: usize, seed: u64) {
        let mut rng = Rng::new(seed);
        let (a_len, b_len) = (m * k, k * n);
        let mut a = vec![0.0f32; a_len];
        let mut b = vec![0.0f32; b_len];
        rng.fill_normal(&mut a, 1.0);
        rng.fill_normal(&mut b, 1.0);
        let mut c = vec![0.0f32; m * n];
        gemm(layout, 1.0, &a, &b, &mut c, m, k, n);
        let want = reference(layout, &a, &b, m, k, n);
        for (i, (x, y)) in c.iter().zip(&want).enumerate() {
            assert!(
                (x - y).abs() < 1e-3 * k.max(1) as f32,
                "{layout:?} {m}x{k}x{n} differs at {i}: {x} vs {y}"
            );
        }
    }

    #[test]
    fn k_zero_leaves_output_zero_filled() {
        for layout in [GemmLayout::NN, GemmLayout::NT, GemmLayout::TN] {
            let mut c = vec![0.0f32; 3 * 4];
            gemm(layout, 1.0, &[], &[], &mut c, 3, 0, 4);
            assert!(c.iter().all(|&x| x == 0.0), "{layout:?}");
        }
    }

    #[test]
    fn row_and_column_vector_shapes() {
        for layout in [GemmLayout::NN, GemmLayout::NT, GemmLayout::TN] {
            check_layout(layout, 1, 33, 17, 21); // m = 1
            check_layout(layout, 19, 33, 1, 22); // n = 1
            check_layout(layout, 1, 1, 1, 23); // all degenerate
        }
    }

    #[test]
    fn non_multiple_of_tile_dims() {
        for layout in [GemmLayout::NN, GemmLayout::NT, GemmLayout::TN] {
            check_layout(layout, 67, 33, 129, 31);
        }
    }

    #[test]
    fn blocked_path_spans_panel_boundaries() {
        // Crosses MC/KC/NC at least once in every dimension. The k/n
        // remnants exceed the tail-absorption thresholds (one micro-tile
        // of columns, KC_ABSORB of depth), so a second block genuinely
        // runs; sub-threshold remnants are covered by
        // `ragged_tile_edges_match_reference_every_isa`.
        for layout in [GemmLayout::NN, GemmLayout::NT, GemmLayout::TN] {
            check_layout(layout, MC + 3, KC + 37, NC + 40, 41);
        }
    }

    #[test]
    fn alpha_scales_product_exactly() {
        let mut rng = Rng::new(51);
        let a = Tensor::randn([40, 30], 1.0, &mut rng);
        let b = Tensor::randn([30, 20], 1.0, &mut rng);
        let mut c1 = vec![0.0f32; 40 * 20];
        let mut c2 = vec![0.0f32; 40 * 20];
        gemm(GemmLayout::NN, 2.5, a.data(), b.data(), &mut c1, 40, 30, 20);
        gemm(GemmLayout::NN, 1.0, a.data(), b.data(), &mut c2, 40, 30, 20);
        for (x, y) in c1.iter().zip(&c2) {
            assert!((x - 2.5 * y).abs() < 1e-3);
        }
    }

    #[test]
    fn gemm_accumulates_into_nonzero_c() {
        let mut rng = Rng::new(52);
        let a = Tensor::randn([10, 12], 1.0, &mut rng);
        let b = Tensor::randn([12, 9], 1.0, &mut rng);
        let mut c = vec![1.0f32; 10 * 9];
        gemm(GemmLayout::NN, 1.0, a.data(), b.data(), &mut c, 10, 12, 9);
        let want = reference(GemmLayout::NN, a.data(), b.data(), 10, 12, 9);
        for (x, y) in c.iter().zip(&want) {
            assert!((x - (y + 1.0)).abs() < 1e-3);
        }
    }

    #[test]
    fn split_k_path_matches_reference() {
        // Skinny output with deep k: 2 rows, deep depth — forces the
        // split-K parallel path when threads are available.
        let m = 2;
        let k = 4 * KC + 37;
        let n = 6;
        check_layout(GemmLayout::NN, m, k, n, 61);
        check_layout(GemmLayout::NT, m, k, n, 62);
        check_layout(GemmLayout::TN, m, k, n, 63);
    }

    #[test]
    fn parallel_2d_path_matches_reference() {
        check_layout(GemmLayout::NN, 2 * MC + 9, 2 * KC + 1, 2 * NC + 11, 71);
    }

    // ---- ISA matrix: every available micro-kernel, every layout ---------

    /// Blocked product on an explicit ISA (skips the small-op fast path so
    /// the micro-kernel and packing run even for tiny shapes).
    #[allow(clippy::too_many_arguments)]
    fn gemm_blocked_isa(isa: Isa, layout: GemmLayout, a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
        if m == 0 || n == 0 || k == 0 {
            return;
        }
        gemm_serial(isa, layout, 1.0, Operand::F32(a), Operand::F32(b), Epilogue::Add, c, m, k, n);
    }

    #[test]
    fn micro_kernel_edge_shapes_every_isa() {
        // m, n sweep the micro-tile edges {1, MR−1, MR, MR+1, 130} /
        // {1, NR−1, NR, NR+1, 130} of each ISA's tile shape; k crosses
        // nothing (1), an odd prime, and a non-multiple spanning a panel.
        for isa in Isa::available() {
            let (mr, nr) = simd::gemm_tile_shape(isa);
            for layout in [GemmLayout::NN, GemmLayout::NT, GemmLayout::TN] {
                for &m in &[1usize, mr - 1, mr, mr + 1, 130] {
                    for &n in &[1usize, nr - 1, nr, nr + 1, 130] {
                        for &k in &[1usize, 3, 130] {
                            let mut rng = Rng::new((m * 7 + n * 11 + k) as u64);
                            let mut a = vec![0.0f32; m * k];
                            let mut b = vec![0.0f32; k * n];
                            rng.fill_normal(&mut a, 1.0);
                            rng.fill_normal(&mut b, 1.0);
                            let mut c = vec![0.0f32; m * n];
                            gemm_blocked_isa(isa, layout, &a, &b, &mut c, m, k, n);
                            let want = reference(layout, &a, &b, m, k, n);
                            for (i, (x, y)) in c.iter().zip(&want).enumerate() {
                                assert!(
                                    (x - y).abs() < 1e-3 * k.max(1) as f32,
                                    "{} {layout:?} {m}x{k}x{n} differs at {i}: {x} vs {y}",
                                    isa.name()
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn simd_isas_agree_with_scalar_within_ulps() {
        // The micro-kernels accumulate strictly k-major per output element
        // in every ISA, so SIMD results should round like the scalar
        // kernel's — allow 2 ulps of slack for the store epilogue.
        fn ulps(a: f32, b: f32) -> u64 {
            fn key(x: f32) -> i64 {
                let bits = x.to_bits();
                if bits & 0x8000_0000 != 0 { -((bits & 0x7fff_ffff) as i64) } else { bits as i64 }
            }
            (key(a) - key(b)).unsigned_abs()
        }
        let (m, k, n) = (67, KC + 9, 65); // spans a depth-block boundary
        let mut rng = Rng::new(101);
        let mut a = vec![0.0f32; m * k];
        let mut b = vec![0.0f32; k * n];
        rng.fill_normal(&mut a, 1.0);
        rng.fill_normal(&mut b, 1.0);
        for layout in [GemmLayout::NN, GemmLayout::NT, GemmLayout::TN] {
            let mut scalar = vec![0.0f32; m * n];
            gemm_blocked_isa(Isa::Scalar, layout, &a, &b, &mut scalar, m, k, n);
            for isa in Isa::available() {
                let mut c = vec![0.0f32; m * n];
                gemm_blocked_isa(isa, layout, &a, &b, &mut c, m, k, n);
                for (i, (x, y)) in c.iter().zip(&scalar).enumerate() {
                    assert!(
                        ulps(*x, *y) <= 2,
                        "{} {layout:?} elem {i}: {x} vs scalar {y}",
                        isa.name()
                    );
                }
            }
        }
    }

    #[test]
    fn bias_epilogue_every_isa_square_nn() {
        // The satellite check behind the matmul_bias bench fix: the bias
        // epilogue must engage (and be exact) at square NN shapes on every
        // ISA path, including full 256³ where all panel blocks are full.
        for isa in Isa::available() {
            let (m, k, n) = (256usize, 256usize, 256usize);
            let mut rng = Rng::new(103);
            let mut a = vec![0.0f32; m * k];
            let mut b = vec![0.0f32; k * n];
            let mut bias = vec![0.0f32; n];
            rng.fill_normal(&mut a, 1.0);
            rng.fill_normal(&mut b, 1.0);
            rng.fill_normal(&mut bias, 1.0);
            let mut fused = vec![0.0f32; m * n];
            gemm_serial(isa, GemmLayout::NN, 1.0, Operand::F32(&a), Operand::F32(&b), Epilogue::AddBias(&bias), &mut fused, m, k, n);
            let mut plain = vec![0.0f32; m * n];
            gemm_serial(isa, GemmLayout::NN, 1.0, Operand::F32(&a), Operand::F32(&b), Epilogue::Add, &mut plain, m, k, n);
            for (i, (f, p)) in fused.iter().zip(&plain).enumerate() {
                let want = p + bias[i % n];
                assert!(
                    (f - want).abs() <= 1e-4 * want.abs().max(1.0),
                    "{} elem {i}: {f} vs {want}",
                    isa.name()
                );
            }
        }
    }

    // ---- bitwise determinism of the parallel drivers --------------------

    #[test]
    fn parallel_2d_driver_bitwise_matches_serial() {
        // Tiles partition C and every tile runs the identical serial
        // blocked code, so the 2-D driver must be bitwise equal to the
        // whole-output serial product — at any thread count, on the SIMD
        // paths included.
        let (m, k, n) = (MC + 9, KC + 1, NC + 11);
        let mut rng = Rng::new(104);
        let mut a = vec![0.0f32; m * k];
        let mut b = vec![0.0f32; k * n];
        rng.fill_normal(&mut a, 1.0);
        rng.fill_normal(&mut b, 1.0);
        for isa in Isa::available() {
            let mut serial = vec![0.0f32; m * n];
            gemm_serial(isa, GemmLayout::NN, 1.0, Operand::F32(&a), Operand::F32(&b), Epilogue::Add, &mut serial, m, k, n);
            let mut par2d = vec![0.0f32; m * n];
            gemm_parallel_2d(
                isa, GemmLayout::NN, 1.0, Operand::F32(&a), Operand::F32(&b), Epilogue::Add, &mut par2d,
                m, k, n, m.div_ceil(MC), n.div_ceil(NC),
            );
            for (i, (x, y)) in par2d.iter().zip(&serial).enumerate() {
                assert_eq!(x.to_bits(), y.to_bits(), "{} elem {i}", isa.name());
            }
        }
    }

    #[test]
    fn split_k_driver_bitwise_matches_shape_derived_fold() {
        // Split-K's partial grouping is derived from k alone; replaying
        // the same chunking serially must reproduce it bit for bit on
        // every ISA (this is the thread-count-independence argument: the
        // grouping never depends on the worker count).
        let (m, k, n) = (2usize, 4 * KC + 37, 6usize);
        let mut rng = Rng::new(105);
        let mut a = vec![0.0f32; m * k];
        let mut b = vec![0.0f32; k * n];
        rng.fill_normal(&mut a, 1.0);
        rng.fill_normal(&mut b, 1.0);
        for isa in Isa::available() {
            let mut split = vec![0.0f32; m * n];
            gemm_parallel_split_k(isa, GemmLayout::NN, 1.0, Operand::F32(&a), Operand::F32(&b), &mut split, m, k, n);
            // Replay the shape-derived schedule serially.
            const GRAIN: usize = 4 * KC;
            let chunks = k.div_ceil(GRAIN).min(16);
            let per = k.div_ceil(chunks);
            let mut want = vec![0.0f32; m * n];
            for t in 0..chunks {
                let (p0, p1) = (t * per, ((t + 1) * per).min(k));
                let mut partial = vec![0.0f32; m * n];
                let mut tile = CTile::new(&mut partial, n, 0, 0);
                gemm_tile_serial(isa, KernelGen::Fast, GemmLayout::NN, 1.0, Operand::F32(&a), Operand::F32(&b), Epilogue::Add, &mut tile, m, k, n, (0, m), (0, n), (p0, p1));
                for (w, p) in want.iter_mut().zip(&partial) {
                    *w += p;
                }
            }
            for (i, (x, y)) in split.iter().zip(&want).enumerate() {
                assert_eq!(x.to_bits(), y.to_bits(), "{} elem {i}", isa.name());
            }
        }
    }

    fn check_bias_epilogue(m: usize, k: usize, n: usize, seed: u64) {
        let mut rng = Rng::new(seed);
        let mut a = vec![0.0f32; m * k];
        let mut b = vec![0.0f32; k * n];
        let mut bias = vec![0.0f32; n];
        rng.fill_normal(&mut a, 1.0);
        rng.fill_normal(&mut b, 1.0);
        rng.fill_normal(&mut bias, 1.0);
        let mut fused = vec![0.0f32; m * n];
        gemm_bias(GemmLayout::NN, 1.0, &a, &b, &bias, &mut fused, m, k, n);
        let mut want = vec![0.0f32; m * n];
        gemm(GemmLayout::NN, 1.0, &a, &b, &mut want, m, k, n);
        for (row, w) in want.chunks_mut(n).zip(fused.chunks(n)) {
            for ((x, &bv), &f) in row.iter_mut().zip(&bias).zip(w) {
                *x += bv;
                assert!((*x - f).abs() < 1e-3, "{m}x{k}x{n}: {x} vs {f}");
            }
        }
    }

    #[test]
    fn bias_epilogue_matches_separate_add_across_paths() {
        check_bias_epilogue(5, 6, 7, 91); // small direct loops
        check_bias_epilogue(67, 40, 50, 92); // serial blocked
        check_bias_epilogue(MC + 3, KC + 5, NC + 7, 93); // spans panel blocks
        check_bias_epilogue(2, 4 * KC + 37, 6, 94); // split-K shape
    }

    #[test]
    fn bias_epilogue_with_zero_depth_is_bias_broadcast() {
        let bias = [1.0f32, -2.0, 3.0];
        let mut c = vec![0.5f32; 2 * 3];
        gemm_bias(GemmLayout::NN, 1.0, &[], &[], &bias, &mut c, 2, 0, 3);
        assert_eq!(c, vec![1.5, -1.5, 3.5, 1.5, -1.5, 3.5]);
    }

    // ---- ragged fast path: masked tails, pooled scratch, batched grid ---

    /// The satellite coverage matrix: every ISA × NN/NT/TN × m,n drawn
    /// from the tile edges {MR−1, MR, MR+1, 2·MR+3} / {NR−1, NR, NR+1,
    /// 2·NR+3}, k crossing nothing / an odd prime / a panel boundary.
    /// Property checked per case: the blocked kernel ≤ a k-scaled bound
    /// from the f64 reference (the masked tails follow the same k-major
    /// ulp policy as the full tiles).
    #[test]
    fn ragged_tile_edges_match_reference_every_isa() {
        for isa in Isa::available() {
            let (mr, nr) = simd::gemm_tile_shape(isa);
            for layout in [GemmLayout::NN, GemmLayout::NT, GemmLayout::TN] {
                for &m in &[mr - 1, mr, mr + 1, 2 * mr + 3] {
                    for &n in &[nr - 1, nr, nr + 1, 2 * nr + 3] {
                        for &k in &[1usize, 31, KC + 5] {
                            let mut rng = Rng::new((m * 131 + n * 17 + k) as u64);
                            let mut a = vec![0.0f32; m * k];
                            let mut b = vec![0.0f32; k * n];
                            rng.fill_normal(&mut a, 1.0);
                            rng.fill_normal(&mut b, 1.0);
                            let mut c = vec![0.0f32; m * n];
                            gemm_serial(isa, layout, 1.0, Operand::F32(&a), Operand::F32(&b), Epilogue::Add, &mut c, m, k, n);
                            let want = reference(layout, &a, &b, m, k, n);
                            for (i, (x, y)) in c.iter().zip(&want).enumerate() {
                                assert!(
                                    (x - y).abs() < 1e-3 * k.max(1) as f32,
                                    "{} {layout:?} {m}x{k}x{n} elem {i}: {x} vs {y}",
                                    isa.name()
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    /// Whole-product parity: the fast path (SIMD packing + masked tails)
    /// must be bitwise identical to the retained edge-spill baseline —
    /// packing moves the same bits and both store orders apply the same
    /// per-element op sequence.
    #[test]
    fn ragged_fast_path_bitwise_matches_spill_baseline() {
        for isa in Isa::available() {
            let (mr, nr) = simd::gemm_tile_shape(isa);
            for layout in [GemmLayout::NN, GemmLayout::NT, GemmLayout::TN] {
                // k stays within one depth block: the baseline keeps the
                // pre-PR kc blocking, and depth-block grouping is part of
                // each element's rounding sequence.
                for &(m, n, k) in &[
                    (mr + 1, nr + 1, 37usize),
                    (2 * mr + 3, nr - 1, KC - 9),
                    (MC + 1, NC + 1, 33),
                ] {
                    let mut rng = Rng::new((m * 7 + n * 29 + k) as u64);
                    let mut a = vec![0.0f32; m * k];
                    let mut b = vec![0.0f32; k * n];
                    rng.fill_normal(&mut a, 1.0);
                    rng.fill_normal(&mut b, 1.0);
                    let mut fast = vec![0.0f32; m * n];
                    gemm_serial(isa, layout, 1.0, Operand::F32(&a), Operand::F32(&b), Epilogue::Add, &mut fast, m, k, n);
                    let mut base = vec![0.0f32; m * n];
                    let mut tile = CTile::new(&mut base, n, 0, 0);
                    gemm_tile_serial(
                        isa, KernelGen::SpillBaseline, layout, 1.0, Operand::F32(&a), Operand::F32(&b), Epilogue::Add,
                        &mut tile, m, k, n, (0, m), (0, n), (0, k),
                    );
                    for (i, (x, y)) in fast.iter().zip(&base).enumerate() {
                        assert_eq!(
                            x.to_bits(),
                            y.to_bits(),
                            "{} {layout:?} {m}x{k}x{n} elem {i}: {x} vs {y}",
                            isa.name()
                        );
                    }
                }
            }
        }
    }

    /// Recycled (dirty) scratch buffers must not change a single bit: run
    /// the same product on a cold arena and again after unrelated work has
    /// dirtied the pooled buffers.
    #[test]
    fn ragged_pooled_scratch_bitwise_matches_fresh_alloc() {
        let (m, k, n) = (MC + 7, KC + 3, NC + 5);
        let mut rng = Rng::new(271);
        let mut a = vec![0.0f32; m * k];
        let mut b = vec![0.0f32; k * n];
        rng.fill_normal(&mut a, 1.0);
        rng.fill_normal(&mut b, 1.0);
        let mut cold = vec![0.0f32; m * n];
        gemm(GemmLayout::NN, 1.0, &a, &b, &mut cold, m, k, n);
        // Dirty the arena with a differently-shaped product and a split-K
        // shape (which borrows the partial buffer).
        let mut junk = vec![0.0f32; 2 * 6];
        gemm(GemmLayout::NT, -3.0, &a[..2 * (4 * KC + 37)], &b[..(4 * KC + 37) * 6], &mut junk, 2, 4 * KC + 37, 6);
        let mut warm = vec![0.0f32; m * n];
        gemm(GemmLayout::NN, 1.0, &a, &b, &mut warm, m, k, n);
        for (i, (x, y)) in warm.iter().zip(&cold).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "elem {i}");
        }
    }

    /// The flattened (batch × tile) dispatcher must be bitwise identical
    /// to replaying its jobs one at a time through the serial path — task
    /// claiming order can never matter because each tile runs identical
    /// serial code over the full depth.
    #[test]
    fn ragged_batched_dispatcher_bitwise_matches_serial_replay() {
        // Heterogeneous job list: a tiled job, a small direct-loop job,
        // and an empty-depth job, with ragged shapes.
        let mut rng = Rng::new(272);
        let shapes = [(MC + 9, 40usize, NC + 17), (9, 11, 13), (67, 129, 65), (5, 0, 7)];
        let mut operands = Vec::new();
        for &(m, k, n) in &shapes {
            let mut a = vec![0.0f32; m * k];
            let mut b = vec![0.0f32; k * n];
            rng.fill_normal(&mut a, 1.0);
            rng.fill_normal(&mut b, 1.0);
            operands.push((a, b));
        }
        let layouts = [GemmLayout::NN, GemmLayout::NT, GemmLayout::TN, GemmLayout::NN];
        let mut off = 0;
        let mut jobs = Vec::new();
        for (i, &(m, k, n)) in shapes.iter().enumerate() {
            jobs.push(GemmJob {
                layout: layouts[i],
                alpha: 0.5 + i as f32,
                a: Operand::F32(&operands[i].0),
                b: Operand::F32(&operands[i].1),
                m,
                k,
                n,
                c_off: off,
            });
            off += m * n;
        }
        let total = off;
        let mut batched = vec![0.0f32; total];
        gemm_batch_into(&jobs, &mut batched);
        // Serial replay: one job at a time through the serial entry.
        let mut replay = vec![0.0f32; total];
        for j in &jobs {
            gemm_serial_or_small_op(
                j.layout, j.alpha, j.a, j.b, Epilogue::Add,
                &mut replay[j.c_off..j.c_off + j.m * j.n], j.m, j.k, j.n,
            );
        }
        for (i, (x, y)) in batched.iter().zip(&replay).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "elem {i}: {x} vs {y}");
        }
    }

    /// Convert-on-pack must be invisible to numerics: a bf16-stored
    /// operand gives the same f32 result bit for bit as decoding it to
    /// f32 up front (decode is exact, accumulation identical). Shapes
    /// cover the small direct loops and the packed serial/parallel paths;
    /// layouts cover both the gather and the contiguous-copy packs.
    #[test]
    fn bf16_operands_match_decoded_f32_product_bitwise() {
        let mut rng = Rng::new(301);
        type Product = fn(&Tensor, &Tensor) -> Tensor;
        let cases: [(Product, &str); 3] = [(matmul, "NN"), (matmul_nt, "NT"), (matmul_tn, "TN")];
        for &(m, k, n) in &[(7usize, 5usize, 9usize), (67, KC + 9, 65), (MC + 9, 40, NC + 17)] {
            for (run, name) in cases {
                let (a_dims, b_dims) = match name {
                    "NN" => ([m, k], [k, n]),
                    "NT" => ([m, k], [n, k]),
                    _ => ([k, m], [k, n]),
                };
                let a16 = Tensor::randn(a_dims, 1.0, &mut rng).to_dtype(DType::Bf16);
                let b16 = Tensor::randn(b_dims, 1.0, &mut rng).to_dtype(DType::Bf16);
                let got = run(&a16, &b16);
                let want = run(&a16.to_dtype(DType::F32), &b16.to_dtype(DType::F32));
                for (i, (x, y)) in got.data().iter().zip(want.data()).enumerate() {
                    assert_eq!(x.to_bits(), y.to_bits(), "{name} {m}x{k}x{n} elem {i}");
                }
            }
        }
    }

    /// Ragged bmm through the flattened grid vs per-slice matmul.
    #[test]
    fn ragged_bmm_batches_match_per_slice_products() {
        let mut rng = Rng::new(273);
        // Tile-plus-one shape in every dimension, enough batches that the
        // flattened grid spans several jobs.
        let (bs, m, k, n) = (5usize, 65usize, 33usize, 129usize);
        let a = Tensor::randn([bs, m, k], 1.0, &mut rng);
        let b = Tensor::randn([bs, k, n], 1.0, &mut rng);
        let c = bmm(&a, &b);
        for bi in 0..bs {
            let a_s = Tensor::from_vec(a.data()[bi * m * k..(bi + 1) * m * k].to_vec(), [m, k]);
            let b_s = Tensor::from_vec(b.data()[bi * k * n..(bi + 1) * k * n].to_vec(), [k, n]);
            let want = matmul(&a_s, &b_s);
            let got = &c.data()[bi * m * n..(bi + 1) * m * n];
            for (x, y) in got.iter().zip(want.data()) {
                assert!((x - y).abs() < 1e-3, "batch {bi}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn scaled_bmm_variants_match_scale_after() {
        let mut rng = Rng::new(81);
        let q = Tensor::randn([3, 10, 8], 1.0, &mut rng);
        let kt = Tensor::randn([3, 12, 8], 1.0, &mut rng);
        let fused = bmm_nt_scaled(&q, &kt, 0.25);
        let unfused = bmm_nt(&q, &kt).map(|x| 0.25 * x);
        assert!(fused.max_abs_diff(&unfused) < 1e-5);
    }
}
