//! Dense matrix multiplication kernels.
//!
//! Three access patterns are implemented directly (NN, NT, TN) because they
//! are exactly the shapes the forward and backward passes need; this avoids
//! materializing transposed copies on the backward path. All kernels
//! parallelize over output rows with rayon and keep the inner loop a
//! contiguous AXPY or dot product.

use rayon::prelude::*;

use crate::shape::Shape;
use crate::tensor::Tensor;

/// Below this many output elements the rayon dispatch overhead dominates;
/// run single-threaded.
const PAR_THRESHOLD: usize = 16 * 1024;

#[inline]
fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

#[inline]
fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    // 4-way unrolled accumulation: better ILP and less rounding drift.
    let mut acc = [0.0f32; 4];
    let chunks = a.len() / 4;
    for i in 0..chunks {
        let j = i * 4;
        acc[0] += a[j] * b[j];
        acc[1] += a[j + 1] * b[j + 1];
        acc[2] += a[j + 2] * b[j + 2];
        acc[3] += a[j + 3] * b[j + 3];
    }
    let mut s = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for j in chunks * 4..a.len() {
        s += a[j] * b[j];
    }
    s
}

/// C[m,n] = A[m,k] · B[k,n]
fn gemm_nn(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    let body = |(i, c_row): (usize, &mut [f32])| {
        let a_row = &a[i * k..(i + 1) * k];
        for (p, &aip) in a_row.iter().enumerate() {
            if aip != 0.0 {
                axpy(aip, &b[p * n..(p + 1) * n], c_row);
            }
        }
    };
    if m * n >= PAR_THRESHOLD {
        c.par_chunks_mut(n).enumerate().for_each(body);
    } else {
        c.chunks_mut(n).enumerate().for_each(body);
    }
}

/// C[m,n] = A[m,k] · B[n,k]ᵀ  (B stored row-major as [n,k])
fn gemm_nt(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    let body = |(i, c_row): (usize, &mut [f32])| {
        let a_row = &a[i * k..(i + 1) * k];
        for (j, cij) in c_row.iter_mut().enumerate() {
            *cij = dot(a_row, &b[j * k..(j + 1) * k]);
        }
    };
    if m * n >= PAR_THRESHOLD {
        c.par_chunks_mut(n).enumerate().for_each(body);
    } else {
        c.chunks_mut(n).enumerate().for_each(body);
    }
}

/// C[m,n] = A[k,m]ᵀ · B[k,n]  (A stored row-major as [k,m])
fn gemm_tn(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    let body = |(i, c_row): (usize, &mut [f32])| {
        for p in 0..k {
            let aip = a[p * m + i];
            if aip != 0.0 {
                axpy(aip, &b[p * n..(p + 1) * n], c_row);
            }
        }
    };
    if m * n >= PAR_THRESHOLD {
        c.par_chunks_mut(n).enumerate().for_each(body);
    } else {
        c.chunks_mut(n).enumerate().for_each(body);
    }
}

/// `[m,k] × [k,n] -> [m,n]`. Higher-rank `a` is folded to 2-D over its last
/// axis.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let a2 = a.as_2d();
    assert_eq!(b.ndim(), 2, "matmul rhs must be 2-D, got {}", b.shape());
    let (m, k) = (a2.dims()[0], a2.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    assert_eq!(k, k2, "matmul inner dims {} vs {}", a.shape(), b.shape());
    let mut c = vec![0.0f32; m * n];
    gemm_nn(a2.data(), b.data(), &mut c, m, k, n);
    // Preserve leading batch axes of `a`.
    let mut out_dims = a.dims().to_vec();
    *out_dims.last_mut().unwrap() = n;
    Tensor::from_vec(c, Shape::new(&out_dims))
}

/// `[m,k] × [n,k]ᵀ -> [m,n]` without materializing the transpose.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    let a2 = a.as_2d();
    assert_eq!(b.ndim(), 2);
    let (m, k) = (a2.dims()[0], a2.dims()[1]);
    let (n, k2) = (b.dims()[0], b.dims()[1]);
    assert_eq!(k, k2, "matmul_nt inner dims {} vs {}", a.shape(), b.shape());
    let mut c = vec![0.0f32; m * n];
    gemm_nt(a2.data(), b.data(), &mut c, m, k, n);
    let mut out_dims = a.dims().to_vec();
    *out_dims.last_mut().unwrap() = n;
    Tensor::from_vec(c, Shape::new(&out_dims))
}

/// `[k,m]ᵀ × [k,n] -> [m,n]` without materializing the transpose.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    let a2 = a.as_2d();
    let b2 = b.as_2d();
    let (k, m) = (a2.dims()[0], a2.dims()[1]);
    let (k2, n) = (b2.dims()[0], b2.dims()[1]);
    assert_eq!(k, k2, "matmul_tn inner dims {} vs {}", a.shape(), b.shape());
    let mut c = vec![0.0f32; m * n];
    gemm_tn(a2.data(), b2.data(), &mut c, m, k, n);
    Tensor::from_vec(c, [m, n])
}

fn bmm_dims(a: &Tensor, b: &Tensor) -> (usize, usize, usize, usize, usize, usize) {
    assert_eq!(a.ndim(), 3, "bmm lhs must be 3-D, got {}", a.shape());
    assert_eq!(b.ndim(), 3, "bmm rhs must be 3-D, got {}", b.shape());
    let (ba, m, ka) = (a.dims()[0], a.dims()[1], a.dims()[2]);
    let (bb, d1, d2) = (b.dims()[0], b.dims()[1], b.dims()[2]);
    assert_eq!(ba, bb, "bmm batch dims {} vs {}", a.shape(), b.shape());
    (ba, m, ka, bb, d1, d2)
}

/// Batched `[B,m,k] × [B,k,n] -> [B,m,n]`.
pub fn bmm(a: &Tensor, b: &Tensor) -> Tensor {
    let (bs, m, k, _, k2, n) = bmm_dims(a, b);
    assert_eq!(k, k2, "bmm inner dims {} vs {}", a.shape(), b.shape());
    let mut c = vec![0.0f32; bs * m * n];
    let run = |(bi, c_b): (usize, &mut [f32])| {
        gemm_nn(
            &a.data()[bi * m * k..(bi + 1) * m * k],
            &b.data()[bi * k * n..(bi + 1) * k * n],
            c_b,
            m,
            k,
            n,
        );
    };
    if bs * m * n >= PAR_THRESHOLD && bs > 1 {
        c.par_chunks_mut(m * n).enumerate().for_each(run);
    } else {
        c.chunks_mut(m * n).enumerate().for_each(run);
    }
    Tensor::from_vec(c, [bs, m, n])
}

/// Batched `[B,m,k] × [B,n,k]ᵀ -> [B,m,n]` (attention scores `Q·Kᵀ`).
pub fn bmm_nt(a: &Tensor, b: &Tensor) -> Tensor {
    let (bs, m, k, _, n, k2) = bmm_dims(a, b);
    assert_eq!(k, k2, "bmm_nt inner dims {} vs {}", a.shape(), b.shape());
    let mut c = vec![0.0f32; bs * m * n];
    let run = |(bi, c_b): (usize, &mut [f32])| {
        gemm_nt(
            &a.data()[bi * m * k..(bi + 1) * m * k],
            &b.data()[bi * n * k..(bi + 1) * n * k],
            c_b,
            m,
            k,
            n,
        );
    };
    if bs * m * n >= PAR_THRESHOLD && bs > 1 {
        c.par_chunks_mut(m * n).enumerate().for_each(run);
    } else {
        c.chunks_mut(m * n).enumerate().for_each(run);
    }
    Tensor::from_vec(c, [bs, m, n])
}

/// Batched `[B,k,m]ᵀ × [B,k,n] -> [B,m,n]` (attention backward `Aᵀ·dY`).
pub fn bmm_tn(a: &Tensor, b: &Tensor) -> Tensor {
    let (bs, k, m, _, k2, n) = bmm_dims(a, b);
    assert_eq!(k, k2, "bmm_tn inner dims {} vs {}", a.shape(), b.shape());
    let mut c = vec![0.0f32; bs * m * n];
    let run = |(bi, c_b): (usize, &mut [f32])| {
        gemm_tn(
            &a.data()[bi * k * m..(bi + 1) * k * m],
            &b.data()[bi * k * n..(bi + 1) * k * n],
            c_b,
            m,
            k,
            n,
        );
    };
    if bs * m * n >= PAR_THRESHOLD && bs > 1 {
        c.par_chunks_mut(m * n).enumerate().for_each(run);
    } else {
        c.chunks_mut(m * n).enumerate().for_each(run);
    }
    Tensor::from_vec(c, [bs, m, n])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn naive_matmul(a: &Tensor, b: &Tensor) -> Vec<f32> {
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let n = b.dims()[1];
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for p in 0..k {
                    s += a.at(i * k + p) * b.at(p * n + j);
                }
                c[i * n + j] = s;
            }
        }
        c
    }

    #[test]
    fn matmul_matches_naive() {
        let mut rng = Rng::new(1);
        let a = Tensor::randn([7, 5], 1.0, &mut rng);
        let b = Tensor::randn([5, 9], 1.0, &mut rng);
        let c = matmul(&a, &b);
        let expect = naive_matmul(&a, &b);
        for (x, y) in c.data().iter().zip(&expect) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_identity() {
        let mut rng = Rng::new(2);
        let a = Tensor::randn([4, 4], 1.0, &mut rng);
        let mut eye = vec![0.0; 16];
        for i in 0..4 {
            eye[i * 4 + i] = 1.0;
        }
        let id = Tensor::from_vec(eye, [4, 4]);
        let c = matmul(&a, &id);
        assert!(a.max_abs_diff(&c) < 1e-6);
    }

    #[test]
    fn nt_equals_nn_with_transposed_b() {
        let mut rng = Rng::new(3);
        let a = Tensor::randn([6, 8], 1.0, &mut rng);
        let bt = Tensor::randn([10, 8], 1.0, &mut rng); // b = btᵀ : [8,10]
        let via_nt = matmul_nt(&a, &bt);
        // materialize bᵀ manually
        let mut b = vec![0.0; 80];
        for i in 0..10 {
            for j in 0..8 {
                b[j * 10 + i] = bt.at(i * 8 + j);
            }
        }
        let via_nn = matmul(&a, &Tensor::from_vec(b, [8, 10]));
        assert!(via_nt.max_abs_diff(&via_nn) < 1e-4);
    }

    #[test]
    fn tn_equals_nn_with_transposed_a() {
        let mut rng = Rng::new(4);
        let at = Tensor::randn([8, 6], 1.0, &mut rng); // a = atᵀ : [6,8]
        let b = Tensor::randn([8, 5], 1.0, &mut rng);
        let via_tn = matmul_tn(&at, &b);
        let mut a = vec![0.0; 48];
        for i in 0..8 {
            for j in 0..6 {
                a[j * 8 + i] = at.at(i * 6 + j);
            }
        }
        let via_nn = matmul(&Tensor::from_vec(a, [6, 8]), &b);
        assert!(via_tn.max_abs_diff(&via_nn) < 1e-4);
    }

    #[test]
    fn bmm_matches_per_slice_matmul() {
        let mut rng = Rng::new(5);
        let a = Tensor::randn([3, 4, 6], 1.0, &mut rng);
        let b = Tensor::randn([3, 6, 5], 1.0, &mut rng);
        let c = bmm(&a, &b);
        for bi in 0..3 {
            let a_s = Tensor::from_vec(a.data()[bi * 24..(bi + 1) * 24].to_vec(), [4, 6]);
            let b_s = Tensor::from_vec(b.data()[bi * 30..(bi + 1) * 30].to_vec(), [6, 5]);
            let c_s = matmul(&a_s, &b_s);
            let got = &c.data()[bi * 20..(bi + 1) * 20];
            for (x, y) in got.iter().zip(c_s.data()) {
                assert!((x - y).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn bmm_nt_scores_shape_and_symmetry() {
        let mut rng = Rng::new(6);
        let q = Tensor::randn([2, 5, 4], 1.0, &mut rng);
        let s = bmm_nt(&q, &q);
        assert_eq!(s.dims(), &[2, 5, 5]);
        // q·qᵀ is symmetric per batch
        for b in 0..2 {
            for i in 0..5 {
                for j in 0..5 {
                    let x = s.at(b * 25 + i * 5 + j);
                    let y = s.at(b * 25 + j * 5 + i);
                    assert!((x - y).abs() < 1e-5);
                }
            }
        }
    }

    #[test]
    fn batched_lhs_matmul_folds_leading_axes() {
        let mut rng = Rng::new(7);
        let a = Tensor::randn([2, 3, 4], 1.0, &mut rng);
        let w = Tensor::randn([4, 6], 1.0, &mut rng);
        let c = matmul(&a, &w);
        assert_eq!(c.dims(), &[2, 3, 6]);
    }

    #[test]
    fn large_parallel_path_consistent_with_small() {
        let mut rng = Rng::new(8);
        let a = Tensor::randn([300, 64], 1.0, &mut rng);
        let b = Tensor::randn([64, 128], 1.0, &mut rng);
        let big = matmul(&a, &b);
        // spot-check a few entries against naive dot
        for &(i, j) in &[(0usize, 0usize), (7, 100), (299, 127), (150, 64)] {
            let mut s = 0.0;
            for p in 0..64 {
                s += a.at(i * 64 + p) * b.at(p * 128 + j);
            }
            assert!((big.at(i * 128 + j) - s).abs() < 1e-3);
        }
    }
}
