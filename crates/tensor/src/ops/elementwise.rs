//! Elementwise kernels and their derivative helpers.

use crate::tensor::Tensor;

/// `a + b`, same shapes.
pub fn add(a: &Tensor, b: &Tensor) -> Tensor {
    a.zip(b, |x, y| x + y)
}

/// `a - b`, same shapes.
pub fn sub(a: &Tensor, b: &Tensor) -> Tensor {
    a.zip(b, |x, y| x - y)
}

/// Hadamard product, same shapes.
pub fn mul(a: &Tensor, b: &Tensor) -> Tensor {
    a.zip(b, |x, y| x * y)
}

/// `alpha * a`.
pub fn scale(a: &Tensor, alpha: f32) -> Tensor {
    a.map(|x| alpha * x)
}

/// `a + alpha * b` (AXPY), same shapes.
pub fn add_scaled(a: &Tensor, b: &Tensor, alpha: f32) -> Tensor {
    a.zip(b, |x, y| x + alpha * y)
}

/// Broadcast-add a `[n]` bias over the last axis of `a` (`[..., n]`).
pub fn add_bias(a: &Tensor, bias: &Tensor) -> Tensor {
    let n = a.shape().last();
    assert_eq!(bias.numel(), n, "bias len {} vs last dim {}", bias.numel(), n);
    let b = bias.data();
    let mut out = a.to_vec();
    for row in out.chunks_mut(n) {
        for (x, &bb) in row.iter_mut().zip(b) {
            *x += bb;
        }
    }
    Tensor::from_vec(out, a.shape().clone())
}

/// Broadcast-multiply a `[n]` gain over the last axis of `a`.
pub fn mul_last(a: &Tensor, gain: &Tensor) -> Tensor {
    let n = a.shape().last();
    assert_eq!(gain.numel(), n);
    let g = gain.data();
    let mut out = a.to_vec();
    for row in out.chunks_mut(n) {
        for (x, &gg) in row.iter_mut().zip(g) {
            *x *= gg;
        }
    }
    Tensor::from_vec(out, a.shape().clone())
}

const SQRT_2_OVER_PI: f32 = 0.797_884_6;
const GELU_C: f32 = 0.044_715;

/// GELU, tanh approximation (matches PyTorch `approximate="tanh"`).
#[inline]
pub fn gelu_scalar(x: f32) -> f32 {
    0.5 * x * (1.0 + (SQRT_2_OVER_PI * (x + GELU_C * x * x * x)).tanh())
}

/// d/dx of the tanh-approximated GELU.
#[inline]
pub fn gelu_grad_scalar(x: f32) -> f32 {
    let u = SQRT_2_OVER_PI * (x + GELU_C * x * x * x);
    let t = u.tanh();
    let sech2 = 1.0 - t * t;
    0.5 * (1.0 + t) + 0.5 * x * sech2 * SQRT_2_OVER_PI * (1.0 + 3.0 * GELU_C * x * x)
}

pub fn gelu(a: &Tensor) -> Tensor {
    a.map(gelu_scalar)
}

/// Elementwise square.
pub fn square(a: &Tensor) -> Tensor {
    a.map(|x| x * x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn add_sub_roundtrip() {
        let mut rng = Rng::new(1);
        let a = Tensor::randn([4, 5], 1.0, &mut rng);
        let b = Tensor::randn([4, 5], 1.0, &mut rng);
        let c = sub(&add(&a, &b), &b);
        assert!(a.max_abs_diff(&c) < 1e-6);
    }

    #[test]
    fn bias_broadcasts_per_row() {
        let a = Tensor::zeros([2, 3]);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0], [3]);
        let c = add_bias(&a, &b);
        assert_eq!(c.to_vec(), vec![1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn gelu_known_values() {
        // gelu(0) = 0; gelu(x) ≈ x for large x; gelu(-x) ≈ 0 for large x.
        assert_eq!(gelu_scalar(0.0), 0.0);
        assert!((gelu_scalar(10.0) - 10.0).abs() < 1e-4);
        assert!(gelu_scalar(-10.0).abs() < 1e-4);
        // reference value gelu(1.0) ≈ 0.8412 (tanh approx)
        assert!((gelu_scalar(1.0) - 0.8412).abs() < 1e-3);
    }

    #[test]
    fn gelu_grad_matches_finite_difference() {
        for &x in &[-3.0f32, -1.0, -0.1, 0.0, 0.5, 2.0, 4.0] {
            let h = 1e-3;
            let fd = (gelu_scalar(x + h) - gelu_scalar(x - h)) / (2.0 * h);
            assert!(
                (gelu_grad_scalar(x) - fd).abs() < 1e-3,
                "x={x}: {} vs {}",
                gelu_grad_scalar(x),
                fd
            );
        }
    }

    #[test]
    fn scale_and_axpy() {
        let a = Tensor::arange(3);
        let b = Tensor::ones([3]);
        assert_eq!(scale(&a, 2.0).to_vec(), vec![0.0, 2.0, 4.0]);
        assert_eq!(add_scaled(&a, &b, 0.5).to_vec(), vec![0.5, 1.5, 2.5]);
    }
}
