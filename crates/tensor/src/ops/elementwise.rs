//! Elementwise kernels and their derivative helpers.
//!
//! Broadcast ops over the last axis (`add_bias`, `mul_last`) parallelize
//! over rows past a size threshold, and the transformer hot path gets
//! fused variants that avoid materializing intermediates: `add_bias_gelu`
//! (bias + activation in one sweep, returning the pre-activation the
//! backward pass needs) and `add_scaled_into` (an AXPY that reuses the
//! destination buffer when it is uniquely owned).

use crate::par::for_each_row;
use crate::tensor::Tensor;

/// `a + b`, same shapes.
pub fn add(a: &Tensor, b: &Tensor) -> Tensor {
    a.zip(b, |x, y| x + y)
}

/// `a - b`, same shapes.
pub fn sub(a: &Tensor, b: &Tensor) -> Tensor {
    a.zip(b, |x, y| x - y)
}

/// Hadamard product, same shapes.
pub fn mul(a: &Tensor, b: &Tensor) -> Tensor {
    a.zip(b, |x, y| x * y)
}

/// `alpha * a`.
pub fn scale(a: &Tensor, alpha: f32) -> Tensor {
    a.map(|x| alpha * x)
}

/// `a + alpha * b` (AXPY), same shapes.
pub fn add_scaled(a: &Tensor, b: &Tensor, alpha: f32) -> Tensor {
    a.zip(b, |x, y| x + alpha * y)
}

/// `a + alpha * b`, reusing `a`'s buffer when `a` is its sole owner — the
/// gradient-accumulation fast path in `Tape::backward_seeded` (no
/// allocation, one read of `b`). With `alpha = 1.0` the FMA rounds exactly
/// like a plain add, so results match [`add`] bit-for-bit.
pub fn add_scaled_into(a: Tensor, b: &Tensor, alpha: f32) -> Tensor {
    assert_eq!(a.dims(), b.dims(), "add_scaled_into shape mismatch");
    let shape = a.shape().clone();
    let mut data = a.into_data();
    for (x, &y) in data.iter_mut().zip(b.data()) {
        *x = alpha.mul_add(y, *x);
    }
    Tensor::from_vec(data, shape)
}

/// Broadcast-add a `[n]` bias over the last axis of `a` (`[..., n]`).
pub fn add_bias(a: &Tensor, bias: &Tensor) -> Tensor {
    let n = a.shape().last();
    assert_eq!(bias.numel(), n, "bias len {} vs last dim {}", bias.numel(), n);
    let b = bias.data();
    let mut out = a.to_vec();
    for_each_row(&mut out, n, |row| {
        for (x, &bb) in row.iter_mut().zip(b) {
            *x += bb;
        }
    });
    Tensor::from_vec(out, a.shape().clone())
}

/// Broadcast-multiply a `[n]` gain over the last axis of `a`.
pub fn mul_last(a: &Tensor, gain: &Tensor) -> Tensor {
    let n = a.shape().last();
    assert_eq!(gain.numel(), n);
    let g = gain.data();
    let mut out = a.to_vec();
    for_each_row(&mut out, n, |row| {
        for (x, &gg) in row.iter_mut().zip(g) {
            *x *= gg;
        }
    });
    Tensor::from_vec(out, a.shape().clone())
}

// The scalar polynomial kernels (and their lane-parallel SIMD twins) live
// in the explicit-SIMD core; re-exported here so `ops::exp_fast` etc. keep
// their historical paths.
pub use crate::simd::{exp_fast, gelu_scalar, tanh_fast};

use crate::simd::{GELU_C, SQRT_2_OVER_PI};

/// d/dx of the tanh-approximated GELU.
#[inline]
pub fn gelu_grad_scalar(x: f32) -> f32 {
    let u = SQRT_2_OVER_PI * (x + GELU_C * x * x * x);
    let t = tanh_fast(u);
    let sech2 = 1.0 - t * t;
    0.5 * (1.0 + t) + 0.5 * x * sech2 * SQRT_2_OVER_PI * (1.0 + 3.0 * GELU_C * x * x)
}

/// GELU over a tensor: the sweep chunks through the pool and each chunk
/// runs the runtime-dispatched SIMD kernel ([`crate::simd::gelu_sweep`]).
pub fn gelu(a: &Tensor) -> Tensor {
    let mut out = a.to_vec();
    crate::par::for_each_chunk(&mut out, crate::simd::gelu_sweep);
    Tensor::from_vec(out, a.shape().clone())
}

/// Fused bias + GELU: `y = gelu(a + bias)` in one sweep.
///
/// Returns `(y, h)` where `h = a + bias` is the pre-activation the backward
/// pass needs — the two tensors the unfused `add_bias` → `gelu` chain would
/// have produced, minus one full read/write pass and one tape node.
pub fn add_bias_gelu(a: &Tensor, bias: &Tensor) -> (Tensor, Tensor) {
    let n = a.shape().last();
    assert_eq!(bias.numel(), n, "bias len {} vs last dim {}", bias.numel(), n);
    let b = bias.data();
    let mut pre = a.to_vec();
    let mut out = vec![0.0f32; pre.len()];
    // Two tight passes rather than one interleaved loop: the bias add
    // vectorizes cleanly on its own, and the (tanh-bound) activation pass
    // reads `pre` straight back out of cache. Versus the unfused
    // `add_bias` → `gelu` chain this saves an allocation and a tape node.
    crate::par::for_each_row_zip(&mut pre, n, &mut out, n, |_, h_row, y_row| {
        for (h, &bb) in h_row.iter_mut().zip(b) {
            *h += bb;
        }
        crate::simd::gelu_into(h_row, y_row);
    });
    (
        Tensor::from_vec(out, a.shape().clone()),
        Tensor::from_vec(pre, a.shape().clone()),
    )
}

/// Backward of [`add_bias_gelu`]: given the saved pre-activation `h` and
/// upstream gradient `g`, returns `(dx, dbias)` (`dx` is also `dh`).
pub fn add_bias_gelu_backward(h: &Tensor, g: &Tensor) -> (Tensor, Tensor) {
    assert_eq!(h.dims(), g.dims());
    let n = h.shape().last();
    let dx = h.zip(g, |hv, gv| gelu_grad_scalar(hv) * gv);
    let mut dbias = vec![0.0f32; n];
    for row in dx.data().chunks(n) {
        for (d, &v) in dbias.iter_mut().zip(row) {
            *d += v;
        }
    }
    (dx, Tensor::from_vec(dbias, [n]))
}

/// Elementwise square.
pub fn square(a: &Tensor) -> Tensor {
    a.map(|x| x * x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn add_sub_roundtrip() {
        let mut rng = Rng::new(1);
        let a = Tensor::randn([4, 5], 1.0, &mut rng);
        let b = Tensor::randn([4, 5], 1.0, &mut rng);
        let c = sub(&add(&a, &b), &b);
        assert!(a.max_abs_diff(&c) < 1e-6);
    }

    #[test]
    fn bias_broadcasts_per_row() {
        let a = Tensor::zeros([2, 3]);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0], [3]);
        let c = add_bias(&a, &b);
        assert_eq!(c.to_vec(), vec![1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn bias_parallel_path_matches_serial() {
        let mut rng = Rng::new(2);
        let bias = Tensor::randn([64], 1.0, &mut rng);
        let small = Tensor::randn([4, 64], 1.0, &mut rng);
        let small_out = add_bias(&small, &bias);
        // 2048×64 = 128k elements ⇒ parallel path; same rows replicated.
        let big = Tensor::from_vec(small.data().repeat(512), [2048, 64]);
        let big_out = add_bias(&big, &bias);
        for r in 0..2048 {
            let got = &big_out.data()[r * 64..(r + 1) * 64];
            let want = &small_out.data()[(r % 4) * 64..(r % 4 + 1) * 64];
            for (x, y) in got.iter().zip(want) {
                assert_eq!(x, y);
            }
        }
    }

    #[test]
    fn tanh_fast_matches_libm() {
        // Dense sweep across the rational approximation's domain plus the
        // saturated tails.
        let mut x = -10.0f32;
        while x <= 10.0 {
            let got = tanh_fast(x);
            let want = x.tanh();
            assert!(
                (got - want).abs() < 2e-7 + 1e-6 * want.abs(),
                "tanh_fast({x}) = {got} vs {want}"
            );
            x += 0.0137;
        }
        assert_eq!(tanh_fast(0.0), 0.0);
        assert!(tanh_fast(f32::NAN).is_nan());
    }

    #[test]
    fn exp_fast_matches_libm() {
        // Dense sweep over the softmax-relevant range and the full domain.
        let mut x = -87.0f32;
        while x <= 88.0 {
            let got = exp_fast(x);
            let want = x.exp();
            assert!(
                (got - want).abs() <= 2.5e-7 * want,
                "exp_fast({x}) = {got} vs {want} (rel {})",
                (got - want).abs() / want
            );
            x += 0.003_11;
        }
        assert_eq!(exp_fast(0.0), 1.0);
        assert!(exp_fast(f32::NAN).is_nan());
        // Clamped tails stay finite and monotone-consistent.
        assert!(exp_fast(-1000.0) > 0.0 && exp_fast(-1000.0) < 1e-37);
        assert!(exp_fast(1000.0).is_finite());
    }

    #[test]
    fn gelu_known_values() {
        // gelu(0) = 0; gelu(x) ≈ x for large x; gelu(-x) ≈ 0 for large x.
        assert_eq!(gelu_scalar(0.0), 0.0);
        assert!((gelu_scalar(10.0) - 10.0).abs() < 1e-4);
        assert!(gelu_scalar(-10.0).abs() < 1e-4);
        // reference value gelu(1.0) ≈ 0.8412 (tanh approx)
        assert!((gelu_scalar(1.0) - 0.8412).abs() < 1e-3);
    }

    #[test]
    fn gelu_grad_matches_finite_difference() {
        for &x in &[-3.0f32, -1.0, -0.1, 0.0, 0.5, 2.0, 4.0] {
            let h = 1e-3;
            let fd = (gelu_scalar(x + h) - gelu_scalar(x - h)) / (2.0 * h);
            assert!(
                (gelu_grad_scalar(x) - fd).abs() < 1e-3,
                "x={x}: {} vs {}",
                gelu_grad_scalar(x),
                fd
            );
        }
    }

    #[test]
    fn fused_bias_gelu_matches_unfused() {
        let mut rng = Rng::new(3);
        let a = Tensor::randn([6, 33], 1.0, &mut rng);
        let b = Tensor::randn([33], 1.0, &mut rng);
        let (y, h) = add_bias_gelu(&a, &b);
        let h_ref = add_bias(&a, &b);
        let y_ref = gelu(&h_ref);
        assert!(h.max_abs_diff(&h_ref) < 1e-6);
        assert!(y.max_abs_diff(&y_ref) < 1e-6);
    }

    #[test]
    fn fused_bias_gelu_backward_matches_chain() {
        let mut rng = Rng::new(4);
        let a = Tensor::randn([5, 7], 0.8, &mut rng);
        let b = Tensor::randn([7], 0.8, &mut rng);
        let g = Tensor::randn([5, 7], 1.0, &mut rng);
        let (_, h) = add_bias_gelu(&a, &b);
        let (dx, dbias) = add_bias_gelu_backward(&h, &g);
        // chain: dh = gelu'(h)·g, dx = dh, dbias = Σ_rows dh
        let dh = h.zip(&g, |hv, gv| gelu_grad_scalar(hv) * gv);
        assert!(dx.max_abs_diff(&dh) < 1e-6);
        let want = crate::ops::sum_to_last(&dh);
        assert!(dbias.max_abs_diff(&want) < 1e-5);
    }

    #[test]
    fn scale_and_axpy() {
        let a = Tensor::arange(3);
        let b = Tensor::ones([3]);
        assert_eq!(scale(&a, 2.0).to_vec(), vec![0.0, 2.0, 4.0]);
        assert_eq!(add_scaled(&a, &b, 0.5).to_vec(), vec![0.5, 1.5, 2.5]);
    }

    #[test]
    fn add_scaled_into_unique_buffer_is_in_place() {
        let a = Tensor::arange(4);
        let b = Tensor::ones([4]);
        let out = add_scaled_into(a, &b, 2.0);
        assert_eq!(out.to_vec(), vec![2.0, 3.0, 4.0, 5.0]);
        // shared buffer still works (copy path)
        let c = Tensor::arange(4);
        let keep = c.clone();
        let out2 = add_scaled_into(c, &b, 1.0);
        assert_eq!(out2.to_vec(), vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(keep.to_vec(), vec![0.0, 1.0, 2.0, 3.0]);
    }
}
