//! Data-movement kernels: transposes, concatenation, slicing, gathers and
//! image patchification.

use crate::shape::Shape;
use crate::tensor::Tensor;

/// Transpose the last two axes: `[..., m, n] -> [..., n, m]`.
pub fn transpose_last2(t: &Tensor) -> Tensor {
    assert!(t.ndim() >= 2, "transpose needs >= 2 axes");
    let nd = t.ndim();
    let (m, n) = (t.dims()[nd - 2], t.dims()[nd - 1]);
    let batch = t.numel() / (m * n);
    let src = t.data();
    let mut out = vec![0.0f32; t.numel()];
    for b in 0..batch {
        let s = &src[b * m * n..(b + 1) * m * n];
        let d = &mut out[b * m * n..(b + 1) * m * n];
        for i in 0..m {
            for j in 0..n {
                d[j * m + i] = s[i * n + j];
            }
        }
    }
    let mut dims = t.dims().to_vec();
    dims.swap(nd - 2, nd - 1);
    Tensor::from_vec(out, Shape::new(&dims))
}

/// Swap axes 1 and 2 of a 4-D tensor: `[a, b, c, d] -> [a, c, b, d]`.
///
/// This is the rearrangement between channel-major `[B, C, P, D]` and
/// position-major `[B, P, C, D]` token layouts, and between `[B, S, H, dh]`
/// and head-major `[B, H, S, dh]` in attention.
pub fn swap_axes12(t: &Tensor) -> Tensor {
    assert_eq!(t.ndim(), 4, "swap_axes12 wants 4-D, got {}", t.shape());
    let (a, b, c, d) = (t.dims()[0], t.dims()[1], t.dims()[2], t.dims()[3]);
    let src = t.data();
    let mut out = vec![0.0f32; t.numel()];
    for ai in 0..a {
        for bi in 0..b {
            for ci in 0..c {
                let s = ((ai * b + bi) * c + ci) * d;
                let o = ((ai * c + ci) * b + bi) * d;
                out[o..o + d].copy_from_slice(&src[s..s + d]);
            }
        }
    }
    Tensor::from_vec(out, [a, c, b, d])
}

/// Concatenate tensors along `axis`. All other axes must match.
pub fn concat(tensors: &[&Tensor], axis: usize) -> Tensor {
    assert!(!tensors.is_empty(), "concat of nothing");
    let nd = tensors[0].ndim();
    assert!(axis < nd, "axis {axis} out of range for {nd}-D");
    let mut out_dims = tensors[0].dims().to_vec();
    let mut axis_total = 0;
    for t in tensors {
        assert_eq!(t.ndim(), nd, "rank mismatch in concat");
        for (i, (&a, &b)) in t.dims().iter().zip(tensors[0].dims()).enumerate() {
            if i != axis {
                assert_eq!(a, b, "concat non-axis dim mismatch at {i}");
            }
        }
        axis_total += t.dims()[axis];
    }
    out_dims[axis] = axis_total;

    let outer: usize = out_dims[..axis].iter().product();
    let inner: usize = out_dims[axis + 1..].iter().product();
    let mut out = vec![0.0f32; outer * axis_total * inner];
    let out_stride = axis_total * inner;

    let mut offset = 0usize;
    for t in tensors {
        let ax = t.dims()[axis];
        let block = ax * inner;
        for o in 0..outer {
            let src = &t.data()[o * block..(o + 1) * block];
            let dst = &mut out[o * out_stride + offset..o * out_stride + offset + block];
            dst.copy_from_slice(src);
        }
        offset += block;
    }
    Tensor::from_vec(out, Shape::new(&out_dims))
}

/// Take `len` entries starting at `start` along `axis`.
pub fn slice(t: &Tensor, axis: usize, start: usize, len: usize) -> Tensor {
    let nd = t.ndim();
    assert!(axis < nd);
    let ax = t.dims()[axis];
    assert!(
        start + len <= ax,
        "slice {start}..{} beyond axis size {ax}",
        start + len
    );
    let outer: usize = t.dims()[..axis].iter().product();
    let inner: usize = t.dims()[axis + 1..].iter().product();
    let mut out = vec![0.0f32; outer * len * inner];
    for o in 0..outer {
        let src = &t.data()[(o * ax + start) * inner..(o * ax + start + len) * inner];
        out[o * len * inner..(o + 1) * len * inner].copy_from_slice(src);
    }
    let mut dims = t.dims().to_vec();
    dims[axis] = len;
    Tensor::from_vec(out, Shape::new(&dims))
}

/// Scatter-add `grad` (shaped like the slice) back into a zero tensor shaped
/// like the original — the adjoint of [`slice`].
pub fn slice_backward(
    grad: &Tensor,
    orig_dims: &[usize],
    axis: usize,
    start: usize,
) -> Tensor {
    let len = grad.dims()[axis];
    let ax = orig_dims[axis];
    let outer: usize = orig_dims[..axis].iter().product();
    let inner: usize = orig_dims[axis + 1..].iter().product();
    let mut out = vec![0.0f32; orig_dims.iter().product()];
    for o in 0..outer {
        let dst = &mut out[(o * ax + start) * inner..(o * ax + start + len) * inner];
        let src = &grad.data()[o * len * inner..(o + 1) * len * inner];
        for (d, &s) in dst.iter_mut().zip(src) {
            *d += s;
        }
    }
    Tensor::from_vec(out, Shape::new(orig_dims))
}

/// Gather rows of a `[r, d]` matrix: `out[i, :] = t[idx[i], :]`.
pub fn gather_rows(t: &Tensor, idx: &[usize]) -> Tensor {
    assert_eq!(t.ndim(), 2, "gather_rows wants 2-D, got {}", t.shape());
    let (r, d) = (t.dims()[0], t.dims()[1]);
    let mut out = vec![0.0f32; idx.len() * d];
    for (i, &row) in idx.iter().enumerate() {
        assert!(row < r, "gather index {row} out of {r}");
        out[i * d..(i + 1) * d].copy_from_slice(&t.data()[row * d..(row + 1) * d]);
    }
    Tensor::from_vec(out, [idx.len(), d])
}

/// Adjoint of [`gather_rows`]: scatter-add `grad[i, :]` into row `idx[i]` of
/// a zero `[r, d]` matrix. Duplicate indices accumulate.
pub fn gather_rows_backward(grad: &Tensor, idx: &[usize], r: usize) -> Tensor {
    let d = grad.dims()[1];
    let mut out = vec![0.0f32; r * d];
    for (i, &row) in idx.iter().enumerate() {
        let dst = &mut out[row * d..(row + 1) * d];
        let src = &grad.data()[i * d..(i + 1) * d];
        for (o, &g) in dst.iter_mut().zip(src) {
            *o += g;
        }
    }
    Tensor::from_vec(out, [r, d])
}

/// Select entries along axis 1 of a 3-D tensor with a shared index list:
/// `out[b, i, :] = t[b, idx[i], :]`. Used for MAE visible-token selection.
pub fn select_axis1(t: &Tensor, idx: &[usize]) -> Tensor {
    assert_eq!(t.ndim(), 3, "select_axis1 wants 3-D, got {}", t.shape());
    let (b, s, d) = (t.dims()[0], t.dims()[1], t.dims()[2]);
    let mut out = vec![0.0f32; b * idx.len() * d];
    for bi in 0..b {
        for (i, &j) in idx.iter().enumerate() {
            assert!(j < s, "select index {j} out of {s}");
            let src = &t.data()[(bi * s + j) * d..(bi * s + j + 1) * d];
            out[(bi * idx.len() + i) * d..(bi * idx.len() + i + 1) * d].copy_from_slice(src);
        }
    }
    Tensor::from_vec(out, [b, idx.len(), d])
}

/// Adjoint of [`select_axis1`].
pub fn select_axis1_backward(grad: &Tensor, idx: &[usize], s: usize) -> Tensor {
    let (b, k, d) = (grad.dims()[0], grad.dims()[1], grad.dims()[2]);
    assert_eq!(k, idx.len());
    let mut out = vec![0.0f32; b * s * d];
    for bi in 0..b {
        for (i, &j) in idx.iter().enumerate() {
            let dst = &mut out[(bi * s + j) * d..(bi * s + j + 1) * d];
            let src = &grad.data()[(bi * k + i) * d..(bi * k + i + 1) * d];
            for (o, &g) in dst.iter_mut().zip(src) {
                *o += g;
            }
        }
    }
    Tensor::from_vec(out, [b, s, d])
}

/// Split an image batch into flattened patches:
/// `[B, C, H, W] -> [B, C, P, p²]` with `P = (H/p)·(W/p)`.
/// Patches are ordered row-major over the patch grid; each patch is
/// flattened row-major. The adjoint is [`unpatchify`] (they are mutually
/// inverse permutations).
pub fn patchify(img: &Tensor, p: usize) -> Tensor {
    assert_eq!(img.ndim(), 4, "patchify wants [B,C,H,W], got {}", img.shape());
    let (b, c, h, w) = (img.dims()[0], img.dims()[1], img.dims()[2], img.dims()[3]);
    assert!(h % p == 0 && w % p == 0, "image {h}x{w} not divisible by patch {p}");
    let (gh, gw) = (h / p, w / p);
    let np = gh * gw;
    let src = img.data();
    let mut out = vec![0.0f32; img.numel()];
    for bc in 0..b * c {
        let plane = &src[bc * h * w..(bc + 1) * h * w];
        let dst = &mut out[bc * np * p * p..(bc + 1) * np * p * p];
        for gy in 0..gh {
            for gx in 0..gw {
                let patch = (gy * gw + gx) * p * p;
                for py in 0..p {
                    let row = (gy * p + py) * w + gx * p;
                    dst[patch + py * p..patch + (py + 1) * p]
                        .copy_from_slice(&plane[row..row + p]);
                }
            }
        }
    }
    Tensor::from_vec(out, [b, c, np, p * p])
}

/// Inverse of [`patchify`]: `[B, C, P, p²] -> [B, C, H, W]`.
pub fn unpatchify(t: &Tensor, h: usize, w: usize, p: usize) -> Tensor {
    assert_eq!(t.ndim(), 4, "unpatchify wants [B,C,P,p²], got {}", t.shape());
    let (b, c, np, pp) = (t.dims()[0], t.dims()[1], t.dims()[2], t.dims()[3]);
    assert_eq!(pp, p * p);
    let (gh, gw) = (h / p, w / p);
    assert_eq!(np, gh * gw, "patch count mismatch");
    let src = t.data();
    let mut out = vec![0.0f32; b * c * h * w];
    for bc in 0..b * c {
        let patches = &src[bc * np * pp..(bc + 1) * np * pp];
        let plane = &mut out[bc * h * w..(bc + 1) * h * w];
        for gy in 0..gh {
            for gx in 0..gw {
                let patch = (gy * gw + gx) * pp;
                for py in 0..p {
                    let row = (gy * p + py) * w + gx * p;
                    plane[row..row + p]
                        .copy_from_slice(&patches[patch + py * p..patch + (py + 1) * p]);
                }
            }
        }
    }
    Tensor::from_vec(out, [b, c, h, w])
}

/// Broadcast a `[s, d]` tensor to `[b, s, d]` by repetition.
pub fn broadcast_to_batch(t: &Tensor, b: usize) -> Tensor {
    assert_eq!(t.ndim(), 2);
    let (s, d) = (t.dims()[0], t.dims()[1]);
    let mut out = Vec::with_capacity(b * s * d);
    for _ in 0..b {
        out.extend_from_slice(t.data());
    }
    Tensor::from_vec(out, [b, s, d])
}

/// Adjoint of [`broadcast_to_batch`]: sum over the batch axis.
pub fn sum_over_batch(grad: &Tensor) -> Tensor {
    assert_eq!(grad.ndim(), 3);
    let (b, s, d) = (grad.dims()[0], grad.dims()[1], grad.dims()[2]);
    let mut out = vec![0.0f32; s * d];
    for bi in 0..b {
        for (o, &g) in out
            .iter_mut()
            .zip(&grad.data()[bi * s * d..(bi + 1) * s * d])
        {
            *o += g;
        }
    }
    Tensor::from_vec(out, [s, d])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn transpose_roundtrip() {
        let mut rng = Rng::new(1);
        let t = Tensor::randn([2, 3, 5], 1.0, &mut rng);
        let back = transpose_last2(&transpose_last2(&t));
        assert_eq!(t.to_vec(), back.to_vec());
    }

    #[test]
    fn transpose_values() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [2, 3]);
        let tt = transpose_last2(&t);
        assert_eq!(tt.dims(), &[3, 2]);
        assert_eq!(tt.to_vec(), vec![1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
    }

    #[test]
    fn swap12_roundtrip_and_layout() {
        let mut rng = Rng::new(2);
        let t = Tensor::randn([2, 3, 4, 5], 1.0, &mut rng);
        let s = swap_axes12(&t);
        assert_eq!(s.dims(), &[2, 4, 3, 5]);
        // element check: t[a,b,c,:] == s[a,c,b,:]
        let (a, b, c, d) = (1, 2, 3, 0);
        assert_eq!(
            t.at(((a * 3 + b) * 4 + c) * 5 + d),
            s.at(((a * 4 + c) * 3 + b) * 5 + d)
        );
        assert_eq!(swap_axes12(&s).to_vec(), t.to_vec());
    }

    #[test]
    fn concat_axis0_and_axis1() {
        let a = Tensor::from_vec(vec![1.0, 2.0], [1, 2]);
        let b = Tensor::from_vec(vec![3.0, 4.0], [1, 2]);
        assert_eq!(concat(&[&a, &b], 0).to_vec(), vec![1.0, 2.0, 3.0, 4.0]);
        let c = concat(&[&a, &b], 1);
        assert_eq!(c.dims(), &[1, 4]);
        assert_eq!(c.to_vec(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn concat_then_slice_recovers_parts() {
        let mut rng = Rng::new(3);
        let a = Tensor::randn([2, 3, 4], 1.0, &mut rng);
        let b = Tensor::randn([2, 5, 4], 1.0, &mut rng);
        let cat = concat(&[&a, &b], 1);
        assert_eq!(cat.dims(), &[2, 8, 4]);
        assert_eq!(slice(&cat, 1, 0, 3).to_vec(), a.to_vec());
        assert_eq!(slice(&cat, 1, 3, 5).to_vec(), b.to_vec());
    }

    #[test]
    fn slice_backward_is_adjoint() {
        // <slice(x), g> == <x, slice_backward(g)> for random x, g.
        let mut rng = Rng::new(4);
        let x = Tensor::randn([3, 6, 2], 1.0, &mut rng);
        let g = Tensor::randn([3, 2, 2], 1.0, &mut rng);
        let y = slice(&x, 1, 1, 2);
        let lhs: f32 = y.data().iter().zip(g.data()).map(|(a, b)| a * b).sum();
        let gx = slice_backward(&g, x.dims(), 1, 1);
        let rhs: f32 = x.data().iter().zip(gx.data()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-4);
    }

    #[test]
    fn gather_scatter_adjoint_with_duplicates() {
        let mut rng = Rng::new(5);
        let x = Tensor::randn([5, 3], 1.0, &mut rng);
        let idx = vec![0, 2, 2, 4];
        let g = Tensor::randn([4, 3], 1.0, &mut rng);
        let y = gather_rows(&x, &idx);
        let lhs: f32 = y.data().iter().zip(g.data()).map(|(a, b)| a * b).sum();
        let gx = gather_rows_backward(&g, &idx, 5);
        let rhs: f32 = x.data().iter().zip(gx.data()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-4);
    }

    #[test]
    fn select_axis1_picks_tokens() {
        let t = Tensor::from_vec((0..12).map(|x| x as f32).collect(), [1, 4, 3]);
        let s = select_axis1(&t, &[3, 1]);
        assert_eq!(s.to_vec(), vec![9.0, 10.0, 11.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn patchify_unpatchify_roundtrip() {
        let mut rng = Rng::new(6);
        let img = Tensor::randn([2, 3, 8, 8], 1.0, &mut rng);
        let p = patchify(&img, 4);
        assert_eq!(p.dims(), &[2, 3, 4, 16]);
        let back = unpatchify(&p, 8, 8, 4);
        assert_eq!(img.to_vec(), back.to_vec());
    }

    #[test]
    fn patchify_layout_first_patch_is_topleft_block() {
        // 4x4 image, 2x2 patches: first patch = rows 0..2 x cols 0..2
        let img = Tensor::from_vec((0..16).map(|x| x as f32).collect(), [1, 1, 4, 4]);
        let p = patchify(&img, 2);
        assert_eq!(&p.to_vec()[..4], &[0.0, 1.0, 4.0, 5.0]);
        // second patch = rows 0..2 x cols 2..4
        assert_eq!(&p.to_vec()[4..8], &[2.0, 3.0, 6.0, 7.0]);
    }

    #[test]
    fn broadcast_sum_adjoint() {
        let mut rng = Rng::new(7);
        let x = Tensor::randn([4, 3], 1.0, &mut rng);
        let g = Tensor::randn([2, 4, 3], 1.0, &mut rng);
        let y = broadcast_to_batch(&x, 2);
        let lhs: f32 = y.data().iter().zip(g.data()).map(|(a, b)| a * b).sum();
        let gx = sum_over_batch(&g);
        let rhs: f32 = x.data().iter().zip(gx.data()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-4);
    }
}
