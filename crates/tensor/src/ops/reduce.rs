//! Reductions and row-wise softmax.

use rayon::prelude::*;

use crate::simd;
use crate::tensor::Tensor;

/// Sum over every axis except the last: `[..., n] -> [n]`.
/// This is the bias-gradient reduction.
pub fn sum_to_last(a: &Tensor) -> Tensor {
    let n = a.shape().last();
    let mut out = vec![0.0f32; n];
    for row in a.data().chunks(n) {
        for (o, &x) in out.iter_mut().zip(row) {
            *o += x;
        }
    }
    Tensor::from_vec(out, [n])
}

/// Sum of all elements as a scalar tensor.
pub fn sum_all(a: &Tensor) -> Tensor {
    Tensor::scalar(a.sum())
}

/// Mean of all elements as a scalar tensor.
pub fn mean_all(a: &Tensor) -> Tensor {
    Tensor::scalar(a.mean())
}

/// Mean over the second axis of a 3-D tensor: `[b, c, d] -> [b, d]`.
pub fn mean_axis1(a: &Tensor) -> Tensor {
    assert_eq!(a.ndim(), 3, "mean_axis1 wants 3-D, got {}", a.shape());
    let (b, c, d) = (a.dims()[0], a.dims()[1], a.dims()[2]);
    let mut out = vec![0.0f32; b * d];
    for bi in 0..b {
        let o = &mut out[bi * d..(bi + 1) * d];
        for ci in 0..c {
            let row = &a.data()[(bi * c + ci) * d..(bi * c + ci + 1) * d];
            for (oo, &x) in o.iter_mut().zip(row) {
                *oo += x;
            }
        }
        let inv = 1.0 / c as f32;
        for oo in o.iter_mut() {
            *oo *= inv;
        }
    }
    Tensor::from_vec(out, [b, d])
}

/// Numerically-stable softmax over the last axis. The max, exponential,
/// and sum passes run on the runtime-dispatched SIMD sweeps in
/// [`crate::simd`] (polynomial `exp_fast` lanes, fixed-tree horizontal
/// folds), so a row costs three vector passes over cache-hot data and no
/// libm calls.
pub fn softmax_last(a: &Tensor) -> Tensor {
    let n = a.shape().last();
    let mut out = a.to_vec();
    let body = |row: &mut [f32]| {
        let max = simd::row_max(row);
        // Exponentiate and sum in separate passes: a fused `sum +=` would
        // chain every lane through one serial accumulator. The standalone
        // sum re-reads the row out of cache with a fixed lane grouping, so
        // results are identical at any thread count.
        simd::exp_sub_sweep(row, max);
        let sum = simd::row_sum(row);
        let inv = 1.0 / sum;
        for x in row.iter_mut() {
            *x *= inv;
        }
    };
    if out.len() >= 64 * 1024 {
        out.par_chunks_mut(n).for_each(body);
    } else {
        out.chunks_mut(n).for_each(body);
    }
    Tensor::from_vec(out, a.shape().clone())
}

/// Backward of softmax over the last axis:
/// `dx = (dy − Σ(dy⊙y)) ⊙ y` per row.
pub fn softmax_last_backward(y: &Tensor, dy: &Tensor) -> Tensor {
    assert_eq!(y.dims(), dy.dims());
    let n = y.shape().last();
    let mut out = vec![0.0f32; y.numel()];
    for ((o_row, y_row), dy_row) in out
        .chunks_mut(n)
        .zip(y.data().chunks(n))
        .zip(dy.data().chunks(n))
    {
        let dot: f32 = y_row.iter().zip(dy_row).map(|(&a, &b)| a * b).sum();
        for ((o, &yv), &dv) in o_row.iter_mut().zip(y_row).zip(dy_row) {
            *o = (dv - dot) * yv;
        }
    }
    Tensor::from_vec(out, y.shape().clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut rng = Rng::new(1);
        let a = Tensor::randn([7, 13], 3.0, &mut rng);
        let s = softmax_last(&a);
        for row in s.data().chunks(13) {
            let sum: f32 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
            assert!(row.iter().all(|&x| x > 0.0));
        }
    }

    #[test]
    fn softmax_shift_invariant() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], [1, 3]);
        let b = Tensor::from_vec(vec![101.0, 102.0, 103.0], [1, 3]);
        assert!(softmax_last(&a).max_abs_diff(&softmax_last(&b)) < 1e-6);
    }

    #[test]
    fn softmax_extreme_values_stable() {
        let a = Tensor::from_vec(vec![1e4, -1e4, 0.0], [1, 3]);
        let s = softmax_last(&a);
        assert!(s.all_finite());
        assert!((s.at(0) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn sum_to_last_is_bias_grad() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [2, 3]);
        assert_eq!(sum_to_last(&a).to_vec(), vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn mean_axis1_averages_channels() {
        // [1, 2, 3]: two "channels" of 3 dims
        let a = Tensor::from_vec(vec![0.0, 2.0, 4.0, 2.0, 4.0, 6.0], [1, 2, 3]);
        assert_eq!(mean_axis1(&a).to_vec(), vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn softmax_backward_matches_jacobian() {
        // For small n, compare against explicit J = diag(y) − y yᵀ.
        let x = Tensor::from_vec(vec![0.3, -0.7, 1.1, 0.2], [1, 4]);
        let y = softmax_last(&x);
        let dy = Tensor::from_vec(vec![0.5, -0.2, 0.1, 0.9], [1, 4]);
        let dx = softmax_last_backward(&y, &dy);
        for i in 0..4 {
            let mut want = 0.0;
            for j in 0..4 {
                let jac = if i == j {
                    y.at(i) * (1.0 - y.at(i))
                } else {
                    -y.at(i) * y.at(j)
                };
                want += jac * dy.at(j);
            }
            assert!((dx.at(i) - want).abs() < 1e-5);
        }
    }
}
