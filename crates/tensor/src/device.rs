//! Byte-accurate memory accounting for simulated devices.
//!
//! Each simulated GPU (one OS thread in the rank launcher) installs a
//! [`MemCounter`] as its thread-local tracker. Every tensor buffer allocated
//! on that thread charges the counter and releases it on drop — even if the
//! drop happens on another thread, because the buffer captures an `Arc` to
//! the counter at allocation time. This gives functional runs a per-rank
//! "allocator view" comparable to `torch.cuda.max_memory_allocated`, which
//! the analytical model in `dchag-perf` is validated against.

use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Running and peak byte counters for one simulated device.
#[derive(Debug, Default)]
pub struct MemCounter {
    current: AtomicUsize,
    peak: AtomicUsize,
}

impl MemCounter {
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Bytes currently allocated.
    pub fn current(&self) -> usize {
        self.current.load(Ordering::Relaxed)
    }

    /// High-water mark since creation (or the last [`reset_peak`]).
    ///
    /// [`reset_peak`]: MemCounter::reset_peak
    pub fn peak(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }

    /// Reset the high-water mark to the current allocation level.
    pub fn reset_peak(&self) {
        self.peak
            .store(self.current.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    pub(crate) fn add(&self, bytes: usize) {
        let now = self.current.fetch_add(bytes, Ordering::Relaxed) + bytes;
        // Relaxed max loop: contention is per-rank-thread only.
        let mut peak = self.peak.load(Ordering::Relaxed);
        while now > peak {
            match self.peak.compare_exchange_weak(
                peak,
                now,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(p) => peak = p,
            }
        }
    }

    pub(crate) fn sub(&self, bytes: usize) {
        self.current.fetch_sub(bytes, Ordering::Relaxed);
    }
}

thread_local! {
    static TRACKER: RefCell<Option<Arc<MemCounter>>> = const { RefCell::new(None) };
}

/// Install `counter` as this thread's allocation tracker, returning the
/// previous one (if any). Pass `None` to disable tracking.
pub fn set_tracker(counter: Option<Arc<MemCounter>>) -> Option<Arc<MemCounter>> {
    TRACKER.with(|t| std::mem::replace(&mut *t.borrow_mut(), counter))
}

/// The tracker currently installed on this thread.
pub fn current_tracker() -> Option<Arc<MemCounter>> {
    TRACKER.with(|t| t.borrow().clone())
}

/// Run `f` with `counter` installed, restoring the previous tracker after.
pub fn with_tracker<R>(counter: Arc<MemCounter>, f: impl FnOnce() -> R) -> R {
    let prev = set_tracker(Some(counter));
    let out = f();
    set_tracker(prev);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;

    #[test]
    fn tracks_alloc_and_drop() {
        let c = MemCounter::new();
        with_tracker(c.clone(), || {
            let t = Tensor::zeros([128]);
            assert_eq!(c.current(), 128 * 4);
            let u = Tensor::zeros([64]);
            assert_eq!(c.current(), 192 * 4);
            drop(t);
            assert_eq!(c.current(), 64 * 4);
            assert_eq!(c.peak(), 192 * 4);
            drop(u);
        });
        assert_eq!(c.current(), 0);
        assert_eq!(c.peak(), 192 * 4);
    }

    #[test]
    fn reset_peak_rebases_to_current() {
        let c = MemCounter::new();
        with_tracker(c.clone(), || {
            let _keep = Tensor::zeros([10]);
            {
                let _big = Tensor::zeros([1000]);
            }
            assert!(c.peak() >= 1010 * 4);
            c.reset_peak();
            assert_eq!(c.peak(), 10 * 4);
        });
    }

    #[test]
    fn cross_thread_drop_releases_on_origin_counter() {
        let c = MemCounter::new();
        let t = with_tracker(c.clone(), || Tensor::zeros([256]));
        assert_eq!(c.current(), 1024);
        std::thread::spawn(move || drop(t)).join().unwrap();
        assert_eq!(c.current(), 0);
    }

    #[test]
    fn untracked_threads_do_not_panic() {
        set_tracker(None);
        let _t = Tensor::zeros([8]);
    }

    #[test]
    fn clone_shares_buffer_no_double_count() {
        let c = MemCounter::new();
        with_tracker(c.clone(), || {
            let t = Tensor::zeros([100]);
            let u = t.clone();
            assert_eq!(c.current(), 400);
            drop(t);
            assert_eq!(c.current(), 400);
            drop(u);
            assert_eq!(c.current(), 0);
        });
    }
}
