//! Thread-local scratch arena: pooled f32 buffers for kernel-internal
//! temporaries.
//!
//! The GEMM layer's pack panels, the split-K partial outputs, and the
//! flash-attention tile state used to be fresh `vec![0.0; …]` allocations
//! on every call — fine for one product, but a steady-state training loop
//! re-allocates (and re-faults) the same few hundred KiB thousands of times
//! per step. The arena keeps returned buffers on a per-thread free list,
//! so after the first call on each worker thread the hot path performs
//! **zero heap allocations** (asserted by the `scratch_steady_state`
//! integration test under a counting allocator).
//!
//! # Discipline
//!
//! [`with_scratch`] / [`with_scratch_zeroed`] are strictly scoped: the
//! buffer is borrowed for the closure and returned to the free list on
//! exit. Nested calls (a GEMM packing two panels, attention holding a
//! score tile across a packed product) simply pop distinct buffers — the
//! free list is LIFO, so the most-recently-used (cache-warm, right-sized)
//! buffer is reused first.
//!
//! Buffers hand out **uninitialized-by-contract** contents in
//! [`with_scratch`]: whatever the previous borrower left there. Callers
//! must fully overwrite (packing, `Epilogue::Assign` stores) or use
//! [`with_scratch_zeroed`]. Recycling never changes numerics: every user
//! either assigns each element before reading it or starts from an
//! explicit fill — the `pooled_scratch_bitwise_matches_fresh` tests pin
//! this by comparing cold-arena and dirty-arena runs bit for bit.
//!
//! If the closure panics the buffer is simply dropped with the unwind
//! (never returned to the list), so a poisoned buffer can't resurface.
//!
//! # Memory accounting
//!
//! Borrowed scratch charges the thread's [`crate::device::MemCounter`]
//! (when one is installed) for the borrow's duration, so kernel-internal
//! temporaries show up in per-device peak budgeting alongside tensor
//! buffers. The accounting is per-thread like the tracker itself: scratch
//! taken on untracked worker threads (e.g. rayon's pool) is not charged.

use std::cell::RefCell;

/// Retained buffers per thread. Deep nesting past this spills to plain
/// allocation — only pathological call stacks reach it (the GEMM + flash
/// stack uses at most 5 levels).
const MAX_POOLED: usize = 16;

thread_local! {
    static FREE: RefCell<Vec<Vec<f32>>> = const { RefCell::new(Vec::new()) };
}

fn take(len: usize) -> Vec<f32> {
    if let Some(c) = crate::device::current_tracker() {
        c.add(len * 4);
    }
    FREE.with(|f| {
        let mut free = f.borrow_mut();
        match free.pop() {
            Some(mut buf) => {
                // `resize` only allocates when capacity is short; steady
                // state reuses the high-water-mark capacity untouched.
                buf.resize(len, 0.0);
                buf
            }
            None => vec![0.0f32; len],
        }
    })
}

fn put(buf: Vec<f32>) {
    // Release what `take` charged (the slice length is fixed for the
    // borrow, so `buf.len()` is the charged length). Buffers dropped
    // instead of pooled still release here first.
    if let Some(c) = crate::device::current_tracker() {
        c.sub(buf.len() * 4);
    }
    FREE.with(|f| {
        let mut free = f.borrow_mut();
        if free.len() < MAX_POOLED {
            free.push(buf);
        }
    })
}

/// Borrow a pooled `len`-element buffer for the duration of `f`.
///
/// Contents are **unspecified** (recycled from earlier borrows) — the
/// closure must write every element it later reads. Use
/// [`with_scratch_zeroed`] for accumulate-into semantics.
pub fn with_scratch<R>(len: usize, f: impl FnOnce(&mut [f32]) -> R) -> R {
    let mut buf = take(len);
    let r = f(&mut buf);
    put(buf);
    r
}

/// [`with_scratch`] with the buffer cleared to `0.0` first (the split-K
/// partial / gradient-accumulator contract). The fill is a linear sweep of
/// warm cache lines — orders of magnitude cheaper than a fresh
/// allocation's page faults.
pub fn with_scratch_zeroed<R>(len: usize, f: impl FnOnce(&mut [f32]) -> R) -> R {
    let mut buf = take(len);
    buf.fill(0.0);
    let r = f(&mut buf);
    put(buf);
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_borrows_get_distinct_buffers() {
        with_scratch(64, |a| {
            a.fill(1.0);
            with_scratch(64, |b| {
                b.fill(2.0);
                assert!(a.iter().all(|&x| x == 1.0), "outer untouched by inner");
                assert!(b.iter().all(|&x| x == 2.0));
            });
            assert!(a.iter().all(|&x| x == 1.0));
        });
    }

    #[test]
    fn zeroed_variant_clears_recycled_contents() {
        with_scratch(32, |a| a.fill(7.0)); // dirty the pool
        with_scratch_zeroed(32, |a| assert!(a.iter().all(|&x| x == 0.0)));
    }

    #[test]
    fn resize_across_lengths_is_sound() {
        with_scratch(8, |a| a.fill(3.0));
        with_scratch(128, |a| {
            assert_eq!(a.len(), 128);
            a.fill(1.0);
        });
        with_scratch(4, |a| assert_eq!(a.len(), 4));
    }

    #[test]
    fn borrowed_scratch_charges_the_tracker() {
        let c = crate::device::MemCounter::new();
        crate::device::with_tracker(c.clone(), || {
            with_scratch(256, |_| {
                assert_eq!(c.current(), 256 * 4);
                with_scratch(64, |_| assert_eq!(c.current(), (256 + 64) * 4));
                assert_eq!(c.current(), 256 * 4, "inner borrow released");
            });
            assert_eq!(c.current(), 0, "all scratch released");
            assert!(c.peak() >= (256 + 64) * 4, "peak saw nested borrows");
        });
    }

    #[test]
    fn panic_drops_buffer_without_poisoning_the_pool() {
        let caught = std::panic::catch_unwind(|| {
            with_scratch(16, |_| panic!("boom"));
        });
        assert!(caught.is_err());
        // The pool still works afterwards.
        with_scratch_zeroed(16, |a| assert!(a.iter().all(|&x| x == 0.0)));
    }
}
