//! Weight-initialization helpers (ViT-conventional schemes).

use crate::rng::Rng;
use crate::tensor::Tensor;

/// Xavier/Glorot uniform for a `[fan_in, fan_out]` weight matrix.
pub fn xavier_uniform(fan_in: usize, fan_out: usize, rng: &mut Rng) -> Tensor {
    let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
    Tensor::rand_uniform([fan_in, fan_out], -bound, bound, rng)
}

/// Truncated-ish normal (resampled beyond 2σ) used for embeddings; std 0.02
/// is the ViT convention.
pub fn trunc_normal(shape: &[usize], std: f32, rng: &mut Rng) -> Tensor {
    let n: usize = shape.iter().product();
    let mut data = Vec::with_capacity(n);
    while data.len() < n {
        let z = rng.normal();
        if z.abs() <= 2.0 {
            data.push(z * std);
        }
    }
    Tensor::from_vec(data, shape)
}

/// Scaled init for residual-branch output projections (GPT-2 style):
/// std = base / sqrt(2 · depth).
pub fn residual_out(fan_in: usize, fan_out: usize, depth: usize, rng: &mut Rng) -> Tensor {
    let std = (2.0 / (fan_in + fan_out) as f32).sqrt() / (2.0 * depth.max(1) as f32).sqrt();
    Tensor::randn([fan_in, fan_out], std, rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_bound_respected() {
        let mut rng = Rng::new(1);
        let w = xavier_uniform(64, 64, &mut rng);
        let bound = (6.0 / 128.0f32).sqrt();
        assert!(w.max_abs() <= bound);
        assert!(w.max_abs() > bound * 0.5); // actually spans the range
    }

    #[test]
    fn trunc_normal_clipped_at_two_sigma() {
        let mut rng = Rng::new(2);
        let w = trunc_normal(&[1000], 0.02, &mut rng);
        assert!(w.max_abs() <= 0.04 + 1e-6);
    }

    #[test]
    fn residual_out_shrinks_with_depth() {
        let mut rng = Rng::new(3);
        let shallow = residual_out(32, 32, 1, &mut rng);
        let deep = residual_out(32, 32, 64, &mut rng);
        // crude std comparison
        let std = |t: &Tensor| (t.data().iter().map(|x| x * x).sum::<f32>() / 1024.0).sqrt();
        assert!(std(&deep) < std(&shallow));
    }
}
