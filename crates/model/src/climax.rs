//! ClimaX-style weather forecasting model (paper §5.2): the shared encoder
//! plus a metadata (lead-time) token and a per-patch linear head predicting
//! all output channels at a future timestep, trained with latitude-weighted
//! MSE.

use dchag_tensor::ops;
use dchag_tensor::prelude::*;

use crate::config::{ModelConfig, TreeConfig};
use crate::embeddings::{latitude_weights, tile_patch_mask, MetaToken};
use crate::encoder::{EncoderBackbone, FmEncoder};
use crate::layers::Linear;

/// Forecasting model, generic over the encoder backbone (single-device or
/// D-CHAG distributed).
pub struct ClimaxModel<E: EncoderBackbone = FmEncoder> {
    pub enc: E,
    pub meta: MetaToken,
    pub head: Linear,
    /// Latitude weights in patch layout `[1, 1, P, p²]`.
    lat_patch: Tensor,
}

impl ClimaxModel<FmEncoder> {
    /// Single-device forecasting model with the standard encoder.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut Rng,
        cfg: &ModelConfig,
        base_seed: u64,
        tree: TreeConfig,
    ) -> Self {
        let enc = FmEncoder::new(store, rng, cfg, base_seed, tree);
        Self::with_encoder(store, rng, enc)
    }
}

impl<E: EncoderBackbone> ClimaxModel<E> {
    /// Attach the forecasting head to any backbone.
    pub fn with_encoder(store: &mut ParamStore, rng: &mut Rng, enc: E) -> Self {
        let cfg = enc.config().clone();
        let meta = MetaToken::new(store, rng, cfg.embed_dim);
        let head = Linear::new(
            store,
            rng,
            "head",
            cfg.embed_dim,
            cfg.patch * cfg.patch * cfg.out_channels,
            true,
        );
        let lat = latitude_weights(cfg.img_h, cfg.img_w);
        let lat_patch = ops::patchify(&lat, cfg.patch); // [1, 1, P, p²]
        ClimaxModel {
            enc,
            meta,
            head,
            lat_patch,
        }
    }

    /// Predict patch-space fields: `[B,C,H,W] -> [B, C_out, P, p²]`.
    pub fn forward(&self, bind: &dyn Binder, images: &Tensor, lead_time: f32) -> Var {
        let tape = bind.tape();
        let cfg = self.enc.config();
        let (b, p) = (images.dims()[0], cfg.num_patches());

        let x = self.enc.embed(bind, images); // [B, P, D]
        let x = self.meta.append(bind, &x, lead_time); // [B, P+1, D]
        let h = self.enc.encode(bind, &x);
        let h = tape.slice(&h, 1, 0, p); // drop metadata token
        let out = self.head.forward(bind, &h); // [B, P, p²·C_out]
        let out = tape.reshape(&out, &[b, p, cfg.out_channels, cfg.patch * cfg.patch]);
        tape.swap_axes12(&out) // [B, C_out, P, p²]
    }

    /// Latitude-weighted MSE between patch-space prediction and target
    /// images.
    pub fn loss(&self, bind: &dyn Binder, pred: &Var, target: &Tensor) -> Var {
        let cfg = self.enc.config();
        let tgt = ops::patchify(target, cfg.patch); // [B, C, P, p²]
        assert_eq!(pred.dims(), tgt.dims(), "pred/target layout");
        let weights = tile_patch_mask(&self.lat_patch, tgt.dims()[0], tgt.dims()[1]);
        let t = bind.tape().constant(tgt);
        bind.tape().masked_mse(pred, &t, &weights)
    }

    /// Combined forward + loss for a training step.
    pub fn forward_loss(
        &self,
        bind: &dyn Binder,
        inputs: &Tensor,
        targets: &Tensor,
        lead_time: f32,
    ) -> (Var, Var) {
        let pred = self.forward(bind, inputs, lead_time);
        let loss = self.loss(bind, &pred, targets);
        (loss, pred)
    }

    /// Reassemble patch-space prediction into images `[B, C_out, H, W]`.
    pub fn predict_image(&self, pred_patches: &Tensor) -> Tensor {
        let cfg = self.enc.config();
        ops::unpatchify(pred_patches, cfg.img_h, cfg.img_w, cfg.patch)
    }

    /// Latitude-weighted RMSE per output channel between two image tensors
    /// `[B, C, H, W]` (the paper's Z500/T850/U10 metrics).
    pub fn rmse_per_channel(&self, pred: &Tensor, target: &Tensor) -> Vec<f32> {
        latitude_rmse(pred, target)
    }
}

/// Latitude-weighted RMSE per channel for `[B, C, H, W]` tensors.
pub fn latitude_rmse(pred: &Tensor, target: &Tensor) -> Vec<f32> {
    assert_eq!(pred.dims(), target.dims());
    let (b, c, h, w) = (
        pred.dims()[0],
        pred.dims()[1],
        pred.dims()[2],
        pred.dims()[3],
    );
    let lat = latitude_weights(h, w);
    let mut out = Vec::with_capacity(c);
    for ci in 0..c {
        let mut acc = 0f64;
        for bi in 0..b {
            let off = (bi * c + ci) * h * w;
            for i in 0..h * w {
                let d = (pred.at(off + i) - target.at(off + i)) as f64;
                acc += d * d * lat.at(i) as f64;
            }
        }
        out.push(((acc / (b * h * w) as f64).sqrt()) as f32);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::UnitKind;

    fn tiny_climax() -> (ParamStore, ClimaxModel) {
        let mut store = ParamStore::new();
        let mut rng = Rng::new(9);
        let cfg = ModelConfig::tiny(5);
        let m = ClimaxModel::new(
            &mut store,
            &mut rng,
            &cfg,
            55,
            TreeConfig::tree0(UnitKind::Linear),
        );
        (store, m)
    }

    #[test]
    fn forward_shape_is_patch_space() {
        let (store, m) = tiny_climax();
        let tape = Tape::new();
        let bind = LocalBinder::new(&tape, &store);
        let mut rng = Rng::new(1);
        let x = Tensor::randn([2, 5, 16, 16], 1.0, &mut rng);
        let pred = m.forward(&bind, &x, 0.25);
        assert_eq!(pred.dims(), &[2, 5, 16, 16]); // [B, C_out, P, p²]
    }

    #[test]
    fn loss_zero_when_prediction_equals_target() {
        let (store, m) = tiny_climax();
        let tape = Tape::new();
        let bind = LocalBinder::new(&tape, &store);
        let mut rng = Rng::new(2);
        let target = Tensor::randn([1, 5, 16, 16], 1.0, &mut rng);
        let tgt_patches = ops::patchify(&target, 4);
        let pred = tape.leaf(tgt_patches);
        let l = m.loss(&bind, &pred, &target);
        assert!(l.value().item().abs() < 1e-8);
    }

    #[test]
    fn lead_time_changes_prediction() {
        let (store, m) = tiny_climax();
        let tape = Tape::new();
        let bind = LocalBinder::new(&tape, &store);
        let mut rng = Rng::new(3);
        let x = Tensor::randn([1, 5, 16, 16], 1.0, &mut rng);
        let p1 = m.forward(&bind, &x, 0.0);
        let p2 = m.forward(&bind, &x, 2.0);
        assert!(p1.value().max_abs_diff(p2.value()) > 1e-6);
    }

    #[test]
    fn rmse_zero_for_identical_and_positive_otherwise() {
        let mut rng = Rng::new(4);
        let a = Tensor::randn([2, 3, 8, 8], 1.0, &mut rng);
        let r = latitude_rmse(&a, &a);
        assert!(r.iter().all(|&x| x == 0.0));
        let b = a.map(|x| x + 1.0);
        let r = latitude_rmse(&a, &b);
        // constant offset of 1 with normalized weights -> RMSE ≈ 1
        for x in r {
            assert!((x - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn training_step_reduces_forecast_loss() {
        let (mut store, m) = tiny_climax();
        let mut rng = Rng::new(5);
        let x = Tensor::randn([2, 5, 16, 16], 0.5, &mut rng);
        let y = x.map(|v| 0.9 * v); // learnable damping target
        let mut opt = crate::optim::AdamW::new(1e-2);
        let mut losses = Vec::new();
        for _ in 0..8 {
            let tape = Tape::new();
            let bind = LocalBinder::new(&tape, &store);
            let (loss, _) = m.forward_loss(&bind, &x, &y, 0.25);
            losses.push(loss.value().item());
            let grads = tape.backward(&loss);
            let mut pg = bind.grads(&grads);
            crate::optim::clip_global_norm(&mut pg, 5.0);
            opt.step(&mut store, &pg);
        }
        assert!(losses.last().unwrap() < losses.first().unwrap(), "{losses:?}");
    }

    #[test]
    fn predict_image_inverts_patching() {
        let (_, m) = tiny_climax();
        let mut rng = Rng::new(6);
        let img = Tensor::randn([1, 5, 16, 16], 1.0, &mut rng);
        let patches = ops::patchify(&img, 4);
        assert!(m.predict_image(&patches).max_abs_diff(&img) < 1e-6);
    }
}
