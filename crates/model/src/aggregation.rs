//! Channel-aggregation modules (paper §2.1, §3.2).
//!
//! [`CrossAttnAggregator`] is the paper's cross-attention aggregation layer:
//! full attention among the C channel tokens at every spatial position
//! (quadratic memory in C — the cost D-CHAG attacks), followed by a learned
//! softmax pooling down to one token.
//!
//! [`LinearChannelMix`] is the lightweight `-L` replacement: a learned
//! per-(channel, dim) mixing weight, linear in C with ~`C·D` parameters.

use dchag_tensor::prelude::*;
use dchag_tensor::Shape;

use crate::attention::MultiHeadAttention;
use crate::layers::LayerNorm;

/// Full cross-attention aggregation: `[N, C, D] -> [N, D]`.
pub struct CrossAttnAggregator {
    pub ln: LayerNorm,
    pub attn: MultiHeadAttention,
    /// Pooling query projection `[D, 1]`.
    pub pool_w: ParamId,
    pub in_channels: usize,
    pub dim: usize,
}

impl CrossAttnAggregator {
    pub fn new(
        store: &mut ParamStore,
        rng: &mut Rng,
        name: &str,
        in_channels: usize,
        dim: usize,
        heads: usize,
    ) -> Self {
        CrossAttnAggregator {
            ln: LayerNorm::new(store, &format!("{name}.ln"), dim),
            attn: MultiHeadAttention::new(store, rng, &format!("{name}.attn"), dim, heads),
            pool_w: store.add(
                format!("{name}.pool_w"),
                dchag_tensor::init::xavier_uniform(dim, 1, rng),
            ),
            in_channels,
            dim,
        }
    }

    /// `x: [N, C, D] -> [N, D]` where `N` folds batch and spatial position.
    pub fn forward(&self, bind: &dyn Binder, x: &Var) -> Var {
        let tape = bind.tape();
        let (c, d) = (x.dims()[1], x.dims()[2]);
        assert_eq!(c, self.in_channels, "aggregator channel arity");
        assert_eq!(d, self.dim);

        // Channel self-attention with residual (the C×C score matrix is the
        // quadratic-memory term).
        let h = self.ln.forward(bind, x);
        let a = self.attn.forward(bind, &h);
        let y = tape.add(x, &a);

        // Learned softmax pooling over channels, fused: one tape node
        // instead of matmul → reshape → softmax → reshape → bmm, and no
        // [N,C,1]/[N,1,C]/[N,1,D] intermediates.
        tape.softmax_pool(&y, &bind.bind(self.pool_w))
    }
}

/// Linear channel mixing: `out[n,d] = b[d] + Σ_c w[c,d]·x[n,c,d]`.
pub struct LinearChannelMix {
    pub w: ParamId,
    pub b: ParamId,
    pub in_channels: usize,
    pub dim: usize,
}

impl LinearChannelMix {
    pub fn new(
        store: &mut ParamStore,
        rng: &mut Rng,
        name: &str,
        in_channels: usize,
        dim: usize,
    ) -> Self {
        // Initialize near an average so early training matches the
        // cross-attention pooling scale.
        let mut w = vec![1.0 / in_channels as f32; in_channels * dim];
        for v in w.iter_mut() {
            *v += rng.normal() * 0.01 / in_channels as f32;
        }
        LinearChannelMix {
            w: store.add(format!("{name}.w"), Tensor::from_vec(w, [in_channels, dim])),
            b: store.add(format!("{name}.b"), Tensor::zeros([dim])),
            in_channels,
            dim,
        }
    }

    /// `x: [N, C, D] -> [N, D]`.
    pub fn forward(&self, bind: &dyn Binder, x: &Var) -> Var {
        let tape = bind.tape();
        let (n, c, d) = (x.dims()[0], x.dims()[1], x.dims()[2]);
        assert_eq!(c, self.in_channels, "mix channel arity");
        assert_eq!(d, self.dim);

        let wv = bind.bind(self.w);
        let bv = bind.bind(self.b);
        let (xid, wid, bid) = (x.id(), wv.id(), bv.id());
        let (xval, wval, bval) = (x.value().clone(), wv.value().clone(), bv.value().clone());

        let mut out = vec![0.0f32; n * d];
        for ni in 0..n {
            let o = &mut out[ni * d..(ni + 1) * d];
            o.copy_from_slice(bval.data());
            for ci in 0..c {
                let xr = &xval.data()[(ni * c + ci) * d..(ni * c + ci + 1) * d];
                let wr = &wval.data()[ci * d..(ci + 1) * d];
                for ((ov, &xvv), &wvv) in o.iter_mut().zip(xr).zip(wr) {
                    *ov += xvv * wvv;
                }
            }
        }
        let out = Tensor::from_vec(out, Shape::new(&[n, d]));
        tape.custom(out, move |g, emit| {
            // dx[n,c,:] = g[n,:] ⊙ w[c,:]
            let mut dx = vec![0.0f32; n * c * d];
            // dw[c,:]  = Σ_n x[n,c,:] ⊙ g[n,:]
            let mut dw = vec![0.0f32; c * d];
            // db = Σ_n g[n,:]
            let mut db = vec![0.0f32; d];
            for ni in 0..n {
                let gr = &g.data()[ni * d..(ni + 1) * d];
                for (o, &gv) in db.iter_mut().zip(gr) {
                    *o += gv;
                }
                for ci in 0..c {
                    let wr = &wval.data()[ci * d..(ci + 1) * d];
                    let xr = &xval.data()[(ni * c + ci) * d..(ni * c + ci + 1) * d];
                    let dxr = &mut dx[(ni * c + ci) * d..(ni * c + ci + 1) * d];
                    let dwr = &mut dw[ci * d..(ci + 1) * d];
                    for j in 0..d {
                        dxr[j] = gr[j] * wr[j];
                        dwr[j] += xr[j] * gr[j];
                    }
                }
            }
            emit(xid, Tensor::from_vec(dx, Shape::new(&[n, c, d])));
            emit(wid, Tensor::from_vec(dw, Shape::new(&[c, d])));
            emit(bid, Tensor::from_vec(db, Shape::new(&[d])));
        })
    }
}

/// A single aggregation unit of either kind (paper's `-C` / `-L`).
#[allow(clippy::large_enum_variant)] // few instances per model; boxing buys nothing
pub enum AggUnit {
    Cross(CrossAttnAggregator),
    Linear(LinearChannelMix),
}

impl AggUnit {
    pub fn new(
        store: &mut ParamStore,
        rng: &mut Rng,
        name: &str,
        kind: crate::config::UnitKind,
        in_channels: usize,
        dim: usize,
        heads: usize,
    ) -> Self {
        match kind {
            crate::config::UnitKind::CrossAttention => AggUnit::Cross(CrossAttnAggregator::new(
                store,
                rng,
                name,
                in_channels,
                dim,
                heads,
            )),
            crate::config::UnitKind::Linear => {
                AggUnit::Linear(LinearChannelMix::new(store, rng, name, in_channels, dim))
            }
        }
    }

    pub fn in_channels(&self) -> usize {
        match self {
            AggUnit::Cross(u) => u.in_channels,
            AggUnit::Linear(u) => u.in_channels,
        }
    }

    /// Which flavor this unit is (`-C` cross-attention / `-L` linear).
    pub fn kind(&self) -> crate::config::UnitKind {
        match self {
            AggUnit::Cross(_) => crate::config::UnitKind::CrossAttention,
            AggUnit::Linear(_) => crate::config::UnitKind::Linear,
        }
    }

    /// `[N, C, D] -> [N, D]`.
    pub fn forward(&self, bind: &dyn Binder, x: &Var) -> Var {
        match self {
            AggUnit::Cross(u) => u.forward(bind, x),
            AggUnit::Linear(u) => u.forward(bind, x),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::UnitKind;
    use dchag_tensor::autograd::check::grad_check;
    use dchag_tensor::ops;

    #[test]
    fn cross_aggregator_reduces_channels() {
        let mut store = ParamStore::new();
        let mut rng = Rng::new(1);
        let agg = CrossAttnAggregator::new(&mut store, &mut rng, "agg", 5, 8, 2);
        let tape = Tape::new();
        let bind = LocalBinder::new(&tape, &store);
        let x = tape.leaf(Tensor::randn([6, 5, 8], 1.0, &mut rng));
        let y = agg.forward(&bind, &x);
        assert_eq!(y.dims(), &[6, 8]);
        assert!(y.value().all_finite());
    }

    #[test]
    fn linear_mix_initial_state_is_near_channel_mean() {
        let mut store = ParamStore::new();
        let mut rng = Rng::new(2);
        let mix = LinearChannelMix::new(&mut store, &mut rng, "mix", 4, 8);
        let tape = Tape::new();
        let bind = LocalBinder::new(&tape, &store);
        let x = Tensor::randn([3, 4, 8], 1.0, &mut rng);
        let xv = tape.leaf(x.clone());
        let y = mix.forward(&bind, &xv);
        let mean = ops::mean_axis1(&x);
        assert!(y.value().max_abs_diff(&mean) < 0.1, "init ≈ channel mean");
    }

    #[test]
    fn linear_mix_gradcheck_all_inputs() {
        let mut rng = Rng::new(3);
        let x0 = Tensor::randn([2, 3, 4], 0.5, &mut rng);
        let w0 = Tensor::randn([3, 4], 0.5, &mut rng);
        let b0 = Tensor::randn([4], 0.5, &mut rng);
        grad_check(
            &[x0, w0, b0],
            |tape, leaves| {
                // inline the custom op against explicit leaves
                let mut store = ParamStore::new();
                let mix = LinearChannelMix {
                    w: store.add("w", leaves[1].value().clone()),
                    b: store.add("b", leaves[2].value().clone()),
                    in_channels: 3,
                    dim: 4,
                };
                // manual binder that reuses the provided leaves
                struct Fixed<'a> {
                    tape: &'a Tape,
                    w: Var,
                    b: Var,
                }
                impl Binder for Fixed<'_> {
                    fn tape(&self) -> &Tape {
                        self.tape
                    }
                    fn bind(&self, id: ParamId) -> Var {
                        if id.index() == 0 {
                            self.w.clone()
                        } else {
                            self.b.clone()
                        }
                    }
                }
                let bind = Fixed {
                    tape,
                    w: leaves[1].clone(),
                    b: leaves[2].clone(),
                };
                let y = mix.forward(&bind, &leaves[0]);
                tape.sum_all(&tape.mul(&y, &y))
            },
            2e-2,
        );
    }

    #[test]
    fn cross_aggregator_gradcheck() {
        let mut store = ParamStore::new();
        let mut rng = Rng::new(4);
        let agg = CrossAttnAggregator::new(&mut store, &mut rng, "agg", 3, 4, 2);
        let x0 = Tensor::randn([2, 3, 4], 0.5, &mut rng);
        grad_check(
            &[x0],
            |tape, leaves| {
                let bind = LocalBinder::new(tape, &store);
                let y = agg.forward(&bind, &leaves[0]);
                tape.sum_all(&tape.mul(&y, &y))
            },
            3e-2,
        );
    }

    #[test]
    fn unit_kinds_expose_channel_arity() {
        let mut store = ParamStore::new();
        let mut rng = Rng::new(5);
        let c = AggUnit::new(&mut store, &mut rng, "c", UnitKind::CrossAttention, 7, 8, 2);
        let l = AggUnit::new(&mut store, &mut rng, "l", UnitKind::Linear, 9, 8, 2);
        assert_eq!(c.in_channels(), 7);
        assert_eq!(l.in_channels(), 9);
    }

    #[test]
    fn linear_unit_has_far_fewer_params_than_cross() {
        let mut s1 = ParamStore::new();
        let mut rng = Rng::new(6);
        let _ = AggUnit::new(&mut s1, &mut rng, "c", UnitKind::CrossAttention, 16, 64, 4);
        let cross_params = s1.num_params();
        let mut s2 = ParamStore::new();
        let _ = AggUnit::new(&mut s2, &mut rng, "l", UnitKind::Linear, 16, 64, 4);
        let lin_params = s2.num_params();
        assert!(
            cross_params > 10 * lin_params,
            "cross {cross_params} vs linear {lin_params}"
        );
    }
}
