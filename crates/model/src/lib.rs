//! # dchag-model
//!
//! The multi-channel vision foundation-model architecture the D-CHAG paper
//! targets (its Fig. 1): per-channel patch tokenization, cross-channel
//! aggregation (flat or hierarchical, cross-attention or linear units),
//! special tokens, a ViT encoder, and the two evaluation task heads —
//! masked-autoencoder pretraining and ClimaX-style weather forecasting.
//!
//! Everything here is single-device; the distributed decompositions live in
//! `dchag-parallel` (TP / FSDP / DP) and `dchag-core` (D-CHAG itself) and
//! are tested for equivalence against these modules.

pub mod aggregation;
pub mod attention;
pub mod climax;
pub mod config;
pub mod embeddings;
pub mod encoder;
pub mod hierarchy;
pub mod layers;
pub mod mae;
pub mod optim;
pub mod tokenizer;
pub mod vit;

pub use aggregation::{AggUnit, CrossAttnAggregator, LinearChannelMix};
pub use attention::MultiHeadAttention;
pub use climax::{latitude_rmse, ClimaxModel};
pub use config::{ModelConfig, TreeConfig, UnitKind};
pub use embeddings::{latitude_weights, ChannelEmbed, MetaToken, PosEmbed};
pub use encoder::FmEncoder;
pub use hierarchy::{DistHierarchicalAggregator, HierarchicalAggregator, TreePlan};
pub use layers::{LayerNorm, Linear, Mlp};
pub use mae::{MaeModel, PatchMask};
pub use optim::{clip_global_norm, AdamW};
pub use tokenizer::PatchTokenizer;
pub use vit::{TransformerBlock, ViTEncoder};
