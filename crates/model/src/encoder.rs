//! The full single-device foundation-model encoder (paper Fig. 1):
//! per-channel tokenization → channel-ID embedding → channel aggregation →
//! positional embedding → ViT blocks.
//!
//! The distributed variants (`dchag-parallel`, `dchag-core`) re-compose
//! these same stages across ranks; this module is the ground-truth baseline
//! they are checked against.

use dchag_tensor::prelude::*;

use crate::config::{ModelConfig, TreeConfig};
use crate::embeddings::{ChannelEmbed, PosEmbed};
use crate::hierarchy::HierarchicalAggregator;
use crate::tokenizer::PatchTokenizer;
use crate::vit::ViTEncoder;

/// Abstraction over encoder backbones so task heads (MAE, forecasting) work
/// unchanged on top of the single-device encoder *and* the distributed
/// D-CHAG encoder.
pub trait EncoderBackbone {
    /// Tokenize + aggregate + position-embed: `[B,C,H,W] -> [B,P,D]`.
    fn embed(&self, bind: &dyn Binder, images: &Tensor) -> Var;
    /// Run the ViT stack: `[B,S,D] -> [B,S,D]` (S may include extra tokens).
    fn encode(&self, bind: &dyn Binder, x: &Var) -> Var;
    /// The architecture this backbone realizes.
    fn config(&self) -> &ModelConfig;
}

/// Single-device encoder over all `cfg.channels` input channels.
pub struct FmEncoder {
    pub cfg: ModelConfig,
    pub tokenizer: PatchTokenizer,
    pub chan_embed: ChannelEmbed,
    pub agg: HierarchicalAggregator,
    pub pos: PosEmbed,
    pub vit: ViTEncoder,
}

impl FmEncoder {
    /// `base_seed` keys the channel-owned parameters (tokenizer, channel
    /// embeddings) so distributed layouts reproduce identical weights;
    /// `rng` initializes the shared modules (aggregator, ViT).
    pub fn new(
        store: &mut ParamStore,
        rng: &mut Rng,
        cfg: &ModelConfig,
        base_seed: u64,
        tree: TreeConfig,
    ) -> Self {
        let channels: Vec<usize> = (0..cfg.channels).collect();
        let tokenizer =
            PatchTokenizer::new(store, base_seed, &channels, cfg.patch, cfg.embed_dim);
        let chan_embed = ChannelEmbed::new(store, base_seed, &channels, cfg.embed_dim);
        let agg = HierarchicalAggregator::new(
            store,
            rng,
            "agg",
            cfg.channels,
            tree,
            cfg.embed_dim,
            cfg.heads,
        );
        let pos = PosEmbed::new(store, rng, "pos_embed", cfg.num_patches(), cfg.embed_dim);
        let vit = ViTEncoder::new(
            store,
            rng,
            "vit",
            cfg.embed_dim,
            cfg.depth,
            cfg.heads,
            cfg.mlp_dim(),
        );
        FmEncoder {
            cfg: cfg.clone(),
            tokenizer,
            chan_embed,
            agg,
            pos,
            vit,
        }
    }

    /// Tokenize + aggregate + position-embed: `[B,C,H,W] -> [B,P,D]`.
    /// (Stops before the ViT so callers like MAE can drop masked tokens.)
    pub fn embed(&self, bind: &dyn Binder, images: &Tensor) -> Var {
        let tape = bind.tape();
        let b = images.dims()[0];
        let p = self.cfg.num_patches();
        let d = self.cfg.embed_dim;

        let tokens = self.tokenizer.forward(bind, images); // [B, C, P, D]
        let tokens = self.chan_embed.forward(bind, &tokens);
        let by_pos = tape.swap_axes12(&tokens); // [B, P, C, D]
        let folded = tape.reshape(&by_pos, &[b * p, self.cfg.channels, d]);
        let agg = self.agg.forward(bind, &folded); // [B·P, D]
        let x = tape.reshape(&agg, &[b, p, d]);
        self.pos.forward(bind, &x)
    }

    /// Full encoder: `[B,C,H,W] -> [B,P,D]`.
    pub fn forward(&self, bind: &dyn Binder, images: &Tensor) -> Var {
        let x = self.embed(bind, images);
        self.vit.forward(bind, &x)
    }
}

impl EncoderBackbone for FmEncoder {
    fn embed(&self, bind: &dyn Binder, images: &Tensor) -> Var {
        FmEncoder::embed(self, bind, images)
    }

    fn encode(&self, bind: &dyn Binder, x: &Var) -> Var {
        self.vit.forward(bind, x)
    }

    fn config(&self) -> &ModelConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::UnitKind;

    fn tiny_encoder(channels: usize, tree: TreeConfig) -> (ParamStore, FmEncoder) {
        let mut store = ParamStore::new();
        let mut rng = Rng::new(33);
        let cfg = ModelConfig::tiny(channels);
        let enc = FmEncoder::new(&mut store, &mut rng, &cfg, 1234, tree);
        (store, enc)
    }

    #[test]
    fn forward_shapes() {
        let (store, enc) = tiny_encoder(6, TreeConfig::tree0(UnitKind::CrossAttention));
        let tape = Tape::new();
        let bind = LocalBinder::new(&tape, &store);
        let mut rng = Rng::new(1);
        let imgs = Tensor::randn([2, 6, 16, 16], 1.0, &mut rng);
        let y = enc.forward(&bind, &imgs);
        assert_eq!(y.dims(), &[2, 16, 32]); // P = (16/4)² = 16, D = 32
        assert!(y.value().all_finite());
    }

    #[test]
    fn tree_and_flat_encoders_share_tokenizer_weights() {
        let (s1, _) = tiny_encoder(6, TreeConfig::tree0(UnitKind::CrossAttention));
        let (s2, _) = tiny_encoder(6, TreeConfig::tree(2, UnitKind::Linear));
        // tokenizer params are the first-registered and channel-keyed
        let w1: Vec<f32> = s1.get(s1.ids().next().unwrap()).to_vec();
        let w2: Vec<f32> = s2.get(s2.ids().next().unwrap()).to_vec();
        assert_eq!(w1, w2);
    }

    #[test]
    fn every_parameter_participates_in_training() {
        let (store, enc) = tiny_encoder(4, TreeConfig::tree(2, UnitKind::CrossAttention));
        let tape = Tape::new();
        let bind = LocalBinder::new(&tape, &store);
        let mut rng = Rng::new(2);
        let imgs = Tensor::randn([1, 4, 16, 16], 1.0, &mut rng);
        let y = enc.forward(&bind, &imgs);
        let loss = tape.sum_all(&tape.mul(&y, &y));
        let grads = tape.backward(&loss);
        let pg = bind.grads(&grads);
        let missing: Vec<_> = store
            .iter()
            .filter(|(id, _, _)| pg[id.index()].is_none())
            .map(|(_, n, _)| n.to_string())
            .collect();
        assert!(missing.is_empty(), "dead params: {missing:?}");
    }

    #[test]
    fn deterministic_given_seeds() {
        let out = |seed| {
            let mut store = ParamStore::new();
            let mut rng = Rng::new(33);
            let cfg = ModelConfig::tiny(4);
            let enc = FmEncoder::new(
                &mut store,
                &mut rng,
                &cfg,
                seed,
                TreeConfig::tree0(UnitKind::Linear),
            );
            let tape = Tape::new();
            let bind = LocalBinder::new(&tape, &store);
            let imgs = Tensor::randn([1, 4, 16, 16], 1.0, &mut Rng::new(5));
            enc.forward(&bind, &imgs).value().to_vec()
        };
        assert_eq!(out(7), out(7));
        assert_ne!(out(7), out(8));
    }
}
