//! Vision-transformer encoder: pre-LN blocks of spatial self-attention and
//! GELU MLP (paper Fig. 1, right).

use dchag_tensor::prelude::*;

use crate::attention::MultiHeadAttention;
use crate::layers::{LayerNorm, Mlp};

/// One pre-LN transformer block.
pub struct TransformerBlock {
    pub ln1: LayerNorm,
    pub attn: MultiHeadAttention,
    pub ln2: LayerNorm,
    pub mlp: Mlp,
}

impl TransformerBlock {
    pub fn new(
        store: &mut ParamStore,
        rng: &mut Rng,
        name: &str,
        dim: usize,
        heads: usize,
        mlp_hidden: usize,
    ) -> Self {
        TransformerBlock {
            ln1: LayerNorm::new(store, &format!("{name}.ln1"), dim),
            attn: MultiHeadAttention::new(store, rng, &format!("{name}.attn"), dim, heads),
            ln2: LayerNorm::new(store, &format!("{name}.ln2"), dim),
            mlp: Mlp::new(store, rng, &format!("{name}.mlp"), dim, mlp_hidden),
        }
    }

    /// `[B, S, D] -> [B, S, D]`.
    pub fn forward(&self, bind: &dyn Binder, x: &Var) -> Var {
        let tape = bind.tape();
        let a = self.attn.forward(bind, &self.ln1.forward(bind, x));
        let x = tape.add(x, &a);
        let m = self.mlp.forward(bind, &self.ln2.forward(bind, &x));
        tape.add(&x, &m)
    }
}

/// A stack of transformer blocks with a final LayerNorm.
pub struct ViTEncoder {
    pub blocks: Vec<TransformerBlock>,
    pub ln_f: LayerNorm,
    pub dim: usize,
}

impl ViTEncoder {
    pub fn new(
        store: &mut ParamStore,
        rng: &mut Rng,
        name: &str,
        dim: usize,
        depth: usize,
        heads: usize,
        mlp_hidden: usize,
    ) -> Self {
        let blocks = (0..depth)
            .map(|i| {
                TransformerBlock::new(store, rng, &format!("{name}.blk{i}"), dim, heads, mlp_hidden)
            })
            .collect();
        ViTEncoder {
            blocks,
            ln_f: LayerNorm::new(store, &format!("{name}.ln_f"), dim),
            dim,
        }
    }

    pub fn forward(&self, bind: &dyn Binder, x: &Var) -> Var {
        let mut h = x.clone();
        for blk in &self.blocks {
            h = blk.forward(bind, &h);
        }
        self.ln_f.forward(bind, &h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_preserves_shape() {
        let mut store = ParamStore::new();
        let mut rng = Rng::new(1);
        let blk = TransformerBlock::new(&mut store, &mut rng, "b", 16, 4, 32);
        let tape = Tape::new();
        let bind = LocalBinder::new(&tape, &store);
        let x = tape.leaf(Tensor::randn([2, 5, 16], 1.0, &mut rng));
        let y = blk.forward(&bind, &x);
        assert_eq!(y.dims(), &[2, 5, 16]);
        assert!(y.value().all_finite());
    }

    #[test]
    fn encoder_stacks_depth_blocks() {
        let mut store = ParamStore::new();
        let mut rng = Rng::new(2);
        let enc = ViTEncoder::new(&mut store, &mut rng, "vit", 8, 3, 2, 16);
        assert_eq!(enc.blocks.len(), 3);
        let tape = Tape::new();
        let bind = LocalBinder::new(&tape, &store);
        let x = tape.leaf(Tensor::randn([1, 4, 8], 1.0, &mut rng));
        let y = enc.forward(&bind, &x);
        assert_eq!(y.dims(), &[1, 4, 8]);
    }

    #[test]
    fn residual_path_at_init_keeps_signal() {
        // With fresh params the block output should stay on the same order
        // of magnitude as the input (no exploding activations).
        let mut store = ParamStore::new();
        let mut rng = Rng::new(3);
        let enc = ViTEncoder::new(&mut store, &mut rng, "vit", 32, 4, 4, 64);
        let tape = Tape::new();
        let bind = LocalBinder::new(&tape, &store);
        let x = tape.leaf(Tensor::randn([2, 6, 32], 1.0, &mut rng));
        let y = enc.forward(&bind, &x);
        let ratio = y.value().max_abs() / x.value().max_abs();
        assert!(ratio < 20.0, "activations exploded: {ratio}");
    }

    #[test]
    fn all_block_params_get_grads() {
        let mut store = ParamStore::new();
        let mut rng = Rng::new(4);
        let blk = TransformerBlock::new(&mut store, &mut rng, "b", 8, 2, 16);
        let tape = Tape::new();
        let bind = LocalBinder::new(&tape, &store);
        let x = tape.leaf(Tensor::randn([1, 3, 8], 1.0, &mut rng));
        let y = blk.forward(&bind, &x);
        let loss = tape.sum_all(&tape.mul(&y, &y));
        let grads = tape.backward(&loss);
        let pg = bind.grads(&grads);
        let missing: Vec<_> = store
            .iter()
            .filter(|(id, _, _)| pg[id.index()].is_none())
            .map(|(_, n, _)| n.to_string())
            .collect();
        assert!(missing.is_empty(), "params without grads: {missing:?}");
        let _ = blk;
    }
}
