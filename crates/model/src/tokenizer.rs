//! Per-channel patch tokenization (paper Fig. 1, left).
//!
//! Every channel has its own patch-embedding weights (a `p²·d` conv realized
//! as a matmul over flattened patches). Parameters are initialized from a
//! *channel-keyed* RNG stream: channel `c`'s weights depend only on
//! `(base_seed, c)`, never on which rank owns the channel. This makes
//! distributed tokenization (paper §3.1) bit-identical to the single-device
//! baseline — a property the test suite asserts.

use dchag_tensor::ops;
use dchag_tensor::prelude::*;

struct ChannelTok {
    w: ParamId,
    b: ParamId,
}

/// Tokenizes `[B, C_local, H, W]` images into `[B, C_local, P, D]` tokens,
/// where `C_local` is the subset of global channels this instance owns.
pub struct PatchTokenizer {
    /// Global channel ids owned by this tokenizer, in input order.
    pub channels: Vec<usize>,
    per_channel: Vec<ChannelTok>,
    pub patch: usize,
    pub dim: usize,
}

/// Distinct sub-stream tags so w/b/embedding draws never overlap.
const STREAM_W: u64 = 0x70_6b;
const STREAM_B: u64 = 0x62_69;

impl PatchTokenizer {
    /// `base_seed` must be identical on every rank; `channels` is the local
    /// subset (the full range `0..C` for the single-device baseline).
    pub fn new(
        store: &mut ParamStore,
        base_seed: u64,
        channels: &[usize],
        patch: usize,
        dim: usize,
    ) -> Self {
        let base = Rng::new(base_seed);
        let per_channel = channels
            .iter()
            .map(|&c| {
                let mut wr = base.fork(STREAM_W ^ (c as u64).wrapping_mul(2654435761));
                let mut br = base.fork(STREAM_B ^ (c as u64).wrapping_mul(2654435761));
                let w = store.add(
                    format!("tok.w.{c}"),
                    dchag_tensor::init::xavier_uniform(patch * patch, dim, &mut wr),
                );
                let b = store.add(
                    format!("tok.b.{c}"),
                    Tensor::randn([dim], 0.02, &mut br),
                );
                ChannelTok { w, b }
            })
            .collect();
        PatchTokenizer {
            channels: channels.to_vec(),
            per_channel,
            patch,
            dim,
        }
    }

    pub fn local_channels(&self) -> usize {
        self.channels.len()
    }

    /// Tokenize a batch: `images` must carry exactly this tokenizer's
    /// channels (in the same order). Output `[B, C_local, P, D]`.
    pub fn forward(&self, bind: &dyn Binder, images: &Tensor) -> Var {
        let tape = bind.tape();
        assert_eq!(images.ndim(), 4, "images must be [B,C,H,W]");
        assert_eq!(
            images.dims()[1],
            self.channels.len(),
            "channel count mismatch"
        );
        let (b, _c, h, w) = (
            images.dims()[0],
            images.dims()[1],
            images.dims()[2],
            images.dims()[3],
        );
        let patches = ops::patchify(images, self.patch); // [B, C, P, p²]
        let np = (h / self.patch) * (w / self.patch);
        let pp = self.patch * self.patch;
        let pv = tape.constant(patches);

        let mut tokens = Vec::with_capacity(self.per_channel.len());
        for (i, ct) in self.per_channel.iter().enumerate() {
            let ch = tape.slice(&pv, 1, i, 1); // [B, 1, P, p²]
            let flat = tape.reshape(&ch, &[b * np, pp]);
            let t = tape.matmul(&flat, &bind.bind(ct.w));
            let t = tape.add_bias(&t, &bind.bind(ct.b));
            tokens.push(tape.reshape(&t, &[b, 1, np, self.dim]));
        }
        let refs: Vec<&Var> = tokens.iter().collect();
        tape.concat(&refs, 1) // [B, C, P, D]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_shape() {
        let mut store = ParamStore::new();
        let tok = PatchTokenizer::new(&mut store, 1, &[0, 1, 2], 4, 8);
        let tape = Tape::new();
        let bind = LocalBinder::new(&tape, &store);
        let mut rng = Rng::new(2);
        let imgs = Tensor::randn([2, 3, 8, 8], 1.0, &mut rng);
        let y = tok.forward(&bind, &imgs);
        assert_eq!(y.dims(), &[2, 3, 4, 8]);
    }

    #[test]
    fn channel_weights_depend_only_on_channel_id() {
        // A tokenizer owning channels [2, 5] must hold exactly the same
        // weights as the full tokenizer's channels 2 and 5.
        let mut full_store = ParamStore::new();
        let full = PatchTokenizer::new(&mut full_store, 99, &[0, 1, 2, 3, 4, 5], 4, 8);
        let mut sub_store = ParamStore::new();
        let sub = PatchTokenizer::new(&mut sub_store, 99, &[2, 5], 4, 8);

        let w_full_2 = full_store.get(full.per_channel[2].w);
        let w_sub_2 = sub_store.get(sub.per_channel[0].w);
        assert_eq!(w_full_2.to_vec(), w_sub_2.to_vec());
        let b_full_5 = full_store.get(full.per_channel[5].b);
        let b_sub_5 = sub_store.get(sub.per_channel[1].b);
        assert_eq!(b_full_5.to_vec(), b_sub_5.to_vec());
    }

    #[test]
    fn subset_tokenization_matches_full_slice() {
        // Tokenizing channels {1,3} alone == slicing the full result.
        let mut rng = Rng::new(3);
        let imgs = Tensor::randn([2, 4, 8, 8], 1.0, &mut rng);

        let mut full_store = ParamStore::new();
        let full = PatchTokenizer::new(&mut full_store, 7, &[0, 1, 2, 3], 4, 8);
        let tape = Tape::new();
        let bind = LocalBinder::new(&tape, &full_store);
        let all = full.forward(&bind, &imgs);

        let sub_imgs = ops::concat(
            &[&ops::slice(&imgs, 1, 1, 1), &ops::slice(&imgs, 1, 3, 1)],
            1,
        );
        let mut sub_store = ParamStore::new();
        let sub = PatchTokenizer::new(&mut sub_store, 7, &[1, 3], 4, 8);
        let tape2 = Tape::new();
        let bind2 = LocalBinder::new(&tape2, &sub_store);
        let part = sub.forward(&bind2, &sub_imgs);

        let expect = ops::concat(
            &[
                &ops::slice(all.value(), 1, 1, 1),
                &ops::slice(all.value(), 1, 3, 1),
            ],
            1,
        );
        assert_eq!(part.value().to_vec(), expect.to_vec());
    }

    #[test]
    fn different_channels_produce_different_tokens() {
        let mut store = ParamStore::new();
        let tok = PatchTokenizer::new(&mut store, 1, &[0, 1], 4, 8);
        let tape = Tape::new();
        let bind = LocalBinder::new(&tape, &store);
        // identical image content on both channels
        let mut rng = Rng::new(4);
        let one = Tensor::randn([1, 1, 8, 8], 1.0, &mut rng);
        let imgs = ops::concat(&[&one, &one], 1);
        let y = tok.forward(&bind, &imgs);
        let c0 = ops::slice(y.value(), 1, 0, 1);
        let c1 = ops::slice(y.value(), 1, 1, 1);
        assert!(c0.max_abs_diff(&c1) > 1e-3, "per-channel weights must differ");
    }

    #[test]
    fn tokenizer_params_receive_grads() {
        let mut store = ParamStore::new();
        let tok = PatchTokenizer::new(&mut store, 1, &[0, 1], 4, 8);
        let tape = Tape::new();
        let bind = LocalBinder::new(&tape, &store);
        let mut rng = Rng::new(5);
        let imgs = Tensor::randn([1, 2, 8, 8], 1.0, &mut rng);
        let y = tok.forward(&bind, &imgs);
        let loss = tape.sum_all(&tape.mul(&y, &y));
        let grads = tape.backward(&loss);
        for g in bind.grads(&grads) {
            assert!(g.is_some());
        }
    }
}
