//! Hierarchical channel aggregation (paper §3.2, Fig. 3).
//!
//! A [`TreePlan`] partitions the input channels into first-level groups,
//! each reduced to a single token by its own aggregation unit; when more
//! than one group exists, a second-level unit reduces the group outputs to
//! one token. This turns the aggregation memory from quadratic to linear in
//! the channel count at the cost of extra unit parameters — exactly the
//! trade-off the paper's Fig. 9 sweeps.
//!
//! [`DistHierarchicalAggregator`] spans the tree across ranks: each rank
//! reduces its local channel slice's level-1 groups, and every group token
//! is AllGathered **nonblocking** the moment its unit finishes — so sibling
//! subtree reductions proceed concurrently with the gathers of the groups
//! already done. A replicated level-2 unit then reduces the `G·world`
//! gathered tokens identically on every rank.

use dchag_collectives::{CommRequest, Communicator};
use dchag_tensor::ops;
use dchag_tensor::prelude::*;

use crate::aggregation::AggUnit;
use crate::config::{TreeConfig, UnitKind};

/// Concrete group layout for a given channel count.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TreePlan {
    /// Sizes of the first-level groups (sums to the input channel count).
    pub level1: Vec<usize>,
    /// Whether a second-level unit (over `level1.len()` tokens) exists.
    pub has_level2: bool,
    pub unit: UnitKind,
}

impl TreePlan {
    /// Balanced contiguous grouping: `channels` split into
    /// `cfg.level1_units(channels)` groups whose sizes differ by at most 1.
    pub fn build(channels: usize, cfg: TreeConfig) -> Self {
        assert!(channels > 0, "no channels to aggregate");
        let g = cfg.level1_units(channels);
        let base = channels / g;
        let extra = channels % g;
        let level1: Vec<usize> = (0..g).map(|i| base + usize::from(i < extra)).collect();
        TreePlan {
            level1,
            has_level2: g > 1,
            unit: cfg.unit,
        }
    }

    /// Total number of aggregation units.
    pub fn num_units(&self) -> usize {
        self.level1.len() + usize::from(self.has_level2)
    }

    /// Largest channel count any unit sees.
    pub fn max_unit_channels(&self) -> usize {
        let l1 = self.level1.iter().copied().max().unwrap_or(0);
        if self.has_level2 {
            l1.max(self.level1.len())
        } else {
            l1
        }
    }
}

/// A tree of aggregation units reducing `[N, C, D]` to `[N, D]`.
pub struct HierarchicalAggregator {
    pub plan: TreePlan,
    level1: Vec<AggUnit>,
    level2: Option<AggUnit>,
    pub dim: usize,
}

impl HierarchicalAggregator {
    pub fn new(
        store: &mut ParamStore,
        rng: &mut Rng,
        name: &str,
        channels: usize,
        cfg: TreeConfig,
        dim: usize,
        heads: usize,
    ) -> Self {
        let plan = TreePlan::build(channels, cfg);
        let level1 = plan
            .level1
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                AggUnit::new(
                    store,
                    rng,
                    &format!("{name}.l1.{i}"),
                    cfg.unit,
                    c,
                    dim,
                    heads,
                )
            })
            .collect();
        let level2 = plan.has_level2.then(|| {
            AggUnit::new(
                store,
                rng,
                &format!("{name}.l2"),
                cfg.unit,
                plan.level1.len(),
                dim,
                heads,
            )
        });
        HierarchicalAggregator {
            plan,
            level1,
            level2,
            dim,
        }
    }

    /// `x: [N, C, D] -> [N, D]`.
    pub fn forward(&self, bind: &dyn Binder, x: &Var) -> Var {
        let tape = bind.tape();
        let (n, c, d) = (x.dims()[0], x.dims()[1], x.dims()[2]);
        let total: usize = self.plan.level1.iter().sum();
        assert_eq!(c, total, "channel count does not match tree plan");

        let mut outputs = Vec::with_capacity(self.level1.len());
        let mut start = 0;
        for (unit, &size) in self.level1.iter().zip(&self.plan.level1) {
            let part = tape.slice(x, 1, start, size);
            let reduced = unit.forward(bind, &part); // [N, D]
            outputs.push(tape.reshape(&reduced, &[n, 1, d]));
            start += size;
        }

        match &self.level2 {
            None => tape.reshape(&outputs[0], &[n, d]),
            Some(unit) => {
                let refs: Vec<&Var> = outputs.iter().collect();
                let stacked = tape.concat(&refs, 1); // [N, G, D]
                unit.forward(bind, &stacked)
            }
        }
    }
}

/// A cross-rank channel-aggregation tree: rank-local level-1 units over the
/// local channel slice, pipelined token gathers, and a **replicated**
/// level-2 unit over every rank's group tokens.
///
/// Construction must be SPMD-consistent: `rng` draws the shared level-2
/// parameters (identically seeded on every rank), `local_rng` draws this
/// rank's level-1 parameters (fork it per rank).
pub struct DistHierarchicalAggregator {
    /// Plan over the *local* channels (level-1 only; level 2 spans ranks).
    pub plan: TreePlan,
    level1: Vec<AggUnit>,
    level2: AggUnit,
    pub dim: usize,
    pub world: usize,
}

impl DistHierarchicalAggregator {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        store: &mut ParamStore,
        rng: &mut Rng,
        local_rng: &mut Rng,
        name: &str,
        local_channels: usize,
        cfg: TreeConfig,
        dim: usize,
        heads: usize,
        world: usize,
    ) -> Self {
        assert!(world > 0);
        let plan = TreePlan::build(local_channels, cfg);
        let level1: Vec<AggUnit> = plan
            .level1
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                AggUnit::new(store, local_rng, &format!("{name}.l1.{i}"), cfg.unit, c, dim, heads)
            })
            .collect();
        let level2 = AggUnit::new(
            store,
            rng,
            &format!("{name}.l2"),
            cfg.unit,
            plan.level1.len() * world,
            dim,
            heads,
        );
        debug_assert!(
            level1.iter().chain([&level2]).all(|u| u.kind() == cfg.unit),
            "tree units must share the configured kind"
        );
        DistHierarchicalAggregator {
            plan,
            level1,
            level2,
            dim,
            world,
        }
    }

    /// Tokens the level-2 unit consumes (`G·world`).
    pub fn gathered_tokens(&self) -> usize {
        self.level2.in_channels()
    }

    /// `x_local: [N, C_local, D] -> [N, D]`, replicated across the group.
    ///
    /// Group `g`'s token gather is issued as soon as unit `g` finishes, so
    /// its chunk pipeline runs underneath the forward of groups `g+1..`;
    /// the waits land just before the level-2 reduction. Backward is pure
    /// local slicing — no collectives (the D-CHAG invariant).
    pub fn forward(&self, bind: &dyn Binder, comm: &Communicator, x_local: &Var) -> Var {
        let tape = bind.tape();
        assert_eq!(
            comm.size(),
            self.world,
            "aggregator built for world {} but ran on group of {}",
            self.world,
            comm.size()
        );
        let (n, c, d) = (x_local.dims()[0], x_local.dims()[1], x_local.dims()[2]);
        let total: usize = self.plan.level1.iter().sum();
        assert_eq!(c, total, "local channel count does not match tree plan");
        assert_eq!(d, self.dim);

        // Sibling subtrees: compute group g, issue its token gather, move
        // straight on to group g+1 while the gather pipelines.
        let mut inflight: Vec<(usize, CommRequest)> = Vec::with_capacity(self.level1.len());
        let mut start = 0;
        for (unit, &size) in self.level1.iter().zip(&self.plan.level1) {
            let part = tape.slice(x_local, 1, start, size);
            let reduced = unit.forward(bind, &part); // [N, D]
            let one = tape.reshape(&reduced, &[n, 1, d]);
            inflight.push((one.id(), comm.iall_gather_cat(one.value(), 1)));
            start += size;
        }

        let rank = comm.rank();
        let gathered: Vec<Var> = inflight
            .into_iter()
            .map(|(one_id, req)| {
                let g_val = req.wait(); // [N, world, D]
                tape.custom(g_val, move |g, emit| {
                    // backward: this rank's token slice — no communication
                    emit(one_id, ops::slice(g, 1, rank, 1));
                })
            })
            .collect();
        let refs: Vec<&Var> = gathered.iter().collect();
        let stacked = tape.concat(&refs, 1); // [N, G·world, D], group-major
        self.level2.forward(bind, &stacked)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dchag_tensor::autograd::check::grad_check;

    #[test]
    fn plan_covers_all_channels_balanced() {
        let plan = TreePlan::build(10, TreeConfig::tree(4, UnitKind::Linear));
        assert_eq!(plan.level1, vec![3, 3, 2, 2]);
        assert!(plan.has_level2);
        assert_eq!(plan.num_units(), 5);
    }

    #[test]
    fn tree0_is_single_unit() {
        let plan = TreePlan::build(256, TreeConfig::tree0(UnitKind::CrossAttention));
        assert_eq!(plan.level1, vec![256]);
        assert!(!plan.has_level2);
        assert_eq!(plan.max_unit_channels(), 256);
    }

    #[test]
    fn paper_worked_examples() {
        // 256 local channels: Tree2 -> 2×128, Tree8 -> 8×32 (paper §4.5).
        let t2 = TreePlan::build(256, TreeConfig::tree(2, UnitKind::CrossAttention));
        assert_eq!(t2.level1, vec![128, 128]);
        let t8 = TreePlan::build(256, TreeConfig::tree(8, UnitKind::CrossAttention));
        assert_eq!(t8.level1, vec![32; 8]);
        assert_eq!(t8.max_unit_channels(), 32);
    }

    #[test]
    fn forward_reduces_to_single_token_all_configs() {
        let mut rng = Rng::new(1);
        for cfg in [
            TreeConfig::tree0(UnitKind::Linear),
            TreeConfig::tree(2, UnitKind::Linear),
            TreeConfig::tree(4, UnitKind::CrossAttention),
            TreeConfig::tree(3, UnitKind::CrossAttention),
        ] {
            let mut store = ParamStore::new();
            let agg = HierarchicalAggregator::new(&mut store, &mut rng, "h", 8, cfg, 8, 2);
            let tape = Tape::new();
            let bind = LocalBinder::new(&tape, &store);
            let x = tape.leaf(Tensor::randn([4, 8, 8], 1.0, &mut rng));
            let y = agg.forward(&bind, &x);
            assert_eq!(y.dims(), &[4, 8], "{}", cfg.name());
            assert!(y.value().all_finite());
        }
    }

    #[test]
    fn deeper_trees_add_parameters() {
        let mut rng = Rng::new(2);
        let mut count = |cfg| {
            let mut store = ParamStore::new();
            let _ = HierarchicalAggregator::new(&mut store, &mut rng, "h", 16, cfg, 16, 2);
            store.num_params()
        };
        let t0 = count(TreeConfig::tree0(UnitKind::CrossAttention));
        let t4 = count(TreeConfig::tree(4, UnitKind::CrossAttention));
        assert!(t4 > t0, "tree4 {t4} vs tree0 {t0}");
    }

    #[test]
    fn hierarchical_gradcheck() {
        let mut rng = Rng::new(3);
        let mut store = ParamStore::new();
        let agg = HierarchicalAggregator::new(
            &mut store,
            &mut rng,
            "h",
            6,
            TreeConfig::tree(2, UnitKind::Linear),
            4,
            2,
        );
        let x0 = Tensor::randn([2, 6, 4], 0.5, &mut rng);
        grad_check(
            &[x0],
            |tape, leaves| {
                let bind = LocalBinder::new(tape, &store);
                let y = agg.forward(&bind, &leaves[0]);
                tape.sum_all(&tape.mul(&y, &y))
            },
            2e-2,
        );
    }

    #[test]
    fn dist_tree_output_replicated_and_shaped() {
        use dchag_collectives::run_ranks;
        for world in [1usize, 2, 4] {
            let run = run_ranks(world, |ctx| {
                let mut store = ParamStore::new();
                let mut shared = Rng::new(77);
                let mut local = shared.fork(ctx.comm.rank() as u64 + 1);
                let agg = DistHierarchicalAggregator::new(
                    &mut store,
                    &mut shared,
                    &mut local,
                    "d",
                    4,
                    TreeConfig::tree(2, UnitKind::Linear),
                    8,
                    2,
                    ctx.comm.size(),
                );
                assert_eq!(agg.gathered_tokens(), 2 * ctx.comm.size());
                let tape = Tape::new();
                let bind = LocalBinder::new(&tape, &store);
                let mut drng = Rng::new(5); // same data on every rank
                let x = tape.leaf(Tensor::randn([3, 4, 8], 1.0, &mut drng));
                let y = agg.forward(&bind, &ctx.comm, &x);
                assert_eq!(y.dims(), &[3, 8]);
                assert!(y.value().all_finite());
                // replicated: every rank must hold rank 0's value exactly
                let reference = ctx.comm.broadcast(y.value(), 0);
                y.value().max_abs_diff(&reference)
            });
            for d in run.outputs {
                assert_eq!(d, 0.0, "world={world}: outputs must be replicated");
            }
        }
    }

    #[test]
    fn dist_tree_backward_is_communication_free() {
        use dchag_collectives::{run_ranks, CollOp};
        let run = run_ranks(2, |ctx| {
            let mut store = ParamStore::new();
            let mut shared = Rng::new(9);
            let mut local = shared.fork(ctx.comm.rank() as u64 + 1);
            let agg = DistHierarchicalAggregator::new(
                &mut store,
                &mut shared,
                &mut local,
                "d",
                6,
                TreeConfig::tree(3, UnitKind::Linear),
                4,
                2,
                2,
            );
            let tape = Tape::new();
            let bind = LocalBinder::new(&tape, &store);
            let mut drng = Rng::new(2);
            let x = tape.leaf(Tensor::randn([2, 6, 4], 0.5, &mut drng));
            let y = agg.forward(&bind, &ctx.comm, &x);
            let loss = tape.sum_all(&tape.mul(&y, &y));
            ctx.comm.barrier();
            let before = ctx.comm.traffic().cursor();
            let grads = tape.backward(&loss);
            ctx.comm.barrier();
            let comm_in_bwd = ctx
                .comm
                .traffic()
                .since(before)
                .iter()
                .filter(|e| e.op != CollOp::Barrier)
                .count();
            (comm_in_bwd, grads.get(&x).is_some())
        });
        // rank 0's window is deterministic w.r.t. its own backward
        assert_eq!(run.outputs[0].0, 0, "backward must not communicate");
        for (_, has_grad) in run.outputs {
            assert!(has_grad);
        }
    }

    #[test]
    fn dist_tree_gathers_once_per_sibling_group() {
        use dchag_collectives::{run_ranks, CollOp};
        let run = run_ranks(2, |ctx| {
            let mut store = ParamStore::new();
            let mut shared = Rng::new(11);
            let mut local = shared.fork(ctx.comm.rank() as u64 + 1);
            let agg = DistHierarchicalAggregator::new(
                &mut store,
                &mut shared,
                &mut local,
                "d",
                8,
                TreeConfig::tree(4, UnitKind::Linear),
                4,
                2,
                2,
            );
            let tape = Tape::new();
            let bind = LocalBinder::new(&tape, &store);
            let x = tape.leaf(Tensor::zeros([1, 8, 4]));
            let _ = agg.forward(&bind, &ctx.comm, &x);
            ctx.comm.barrier();
            (
                ctx.comm.traffic().count(CollOp::AllGather),
                ctx.comm.traffic().chunk_events().len(),
            )
        });
        let (gathers, chunks) = run.outputs[0];
        assert_eq!(gathers, 4, "one pipelined gather per level-1 group");
        assert!(chunks >= 4, "each gather stamps at least one chunk");
    }

    #[test]
    #[should_panic(expected = "does not match tree plan")]
    fn channel_mismatch_rejected() {
        let mut rng = Rng::new(4);
        let mut store = ParamStore::new();
        let agg = HierarchicalAggregator::new(
            &mut store,
            &mut rng,
            "h",
            8,
            TreeConfig::tree0(UnitKind::Linear),
            4,
            2,
        );
        let tape = Tape::new();
        let bind = LocalBinder::new(&tape, &store);
        let x = tape.leaf(Tensor::zeros([2, 5, 4]));
        let _ = agg.forward(&bind, &x);
    }
}
