//! AdamW optimizer with decoupled weight decay and global-norm gradient
//! clipping, operating on a [`ParamStore`] and the per-parameter gradient
//! vector produced by a binder.

use dchag_tensor::checkpoint::{OptimEntry, OptimState};
use dchag_tensor::prelude::*;

/// AdamW hyper-parameters and per-parameter moment state.
pub struct AdamW {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    /// Decoupled weight decay, applied only to matrix-shaped parameters
    /// (LayerNorm affines and biases are exempt, the usual convention).
    pub weight_decay: f32,
    t: u64,
    m: Vec<Option<Tensor>>,
    v: Vec<Option<Tensor>>,
    /// f32 master copy of each bf16-stored parameter (None for f32
    /// params). The update math always runs in f32 against the master;
    /// only the stored value re-rounds to bf16 after each step, so
    /// updates smaller than one bf16 ulp still accumulate.
    master: Vec<Option<Tensor>>,
}

impl AdamW {
    pub fn new(lr: f32) -> Self {
        AdamW {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
            master: Vec::new(),
        }
    }

    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Serialize the full optimizer state (step counter, m/v moments, f32
    /// masters), keyed by parameter *name* so restore survives store
    /// reconstruction and reordering. Tensors are `Arc`-shared — this is
    /// O(1) per parameter, safe to hand to a background checkpoint writer.
    pub fn export_state(&self, store: &ParamStore) -> OptimState {
        let mut entries = Vec::new();
        for (i, (_, name, _)) in store.iter().enumerate() {
            let m = self.m.get(i).cloned().flatten();
            let v = self.v.get(i).cloned().flatten();
            let master = self.master.get(i).cloned().flatten();
            if m.is_some() || v.is_some() || master.is_some() {
                entries.push(OptimEntry { name: name.to_string(), m, v, master });
            }
        }
        OptimState { t: self.t, entries }
    }

    /// Restore state captured by [`AdamW::export_state`], matching entries
    /// to `store`'s parameters by name. Parameters absent from `state`
    /// keep zero-initialized moments (the fresh-parameter behaviour);
    /// checkpoint entries with no matching parameter are ignored.
    pub fn import_state(&mut self, store: &ParamStore, state: &OptimState) {
        self.ensure_state(store);
        self.t = state.t;
        for (i, (_, name, _)) in store.iter().enumerate() {
            let entry = state.entries.iter().find(|e| e.name == name);
            self.m[i] = entry.and_then(|e| e.m.clone());
            self.v[i] = entry.and_then(|e| e.v.clone());
            self.master[i] = entry.and_then(|e| e.master.clone());
        }
    }

    fn ensure_state(&mut self, store: &ParamStore) {
        while self.m.len() < store.len() {
            self.m.push(None);
            self.v.push(None);
            self.master.push(None);
        }
    }

    /// Apply one update. `grads[i]` is the gradient of parameter `i` (None =
    /// not used this step, skipped).
    pub fn step(&mut self, store: &mut ParamStore, grads: &[Option<Tensor>]) {
        self.ensure_state(store);
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);

        for (i, id) in store.ids().collect::<Vec<_>>().into_iter().enumerate() {
            let Some(g) = grads.get(i).and_then(|g| g.as_ref()) else {
                continue;
            };
            assert_eq!(
                store.get(id).dims(),
                g.dims(),
                "grad shape for {}",
                store.name(id)
            );

            let shape = store.get(id).shape().clone();
            let m_prev = self
                .m[i]
                .take()
                .unwrap_or_else(|| Tensor::zeros(shape.clone()));
            let v_prev = self
                .v[i]
                .take()
                .unwrap_or_else(|| Tensor::zeros(shape.clone()));

            // Fused single-sweep update: moments and parameter mutate their
            // own (uniquely owned) buffers instead of allocating three
            // fresh tensors per parameter per step. The sweep itself is the
            // runtime-dispatched SIMD kernel (`dchag_tensor::simd`), so the
            // whole update is lane-parallel with no per-element libm sqrt.
            let decay = if shape.ndim() >= 2 { self.weight_decay } else { 0.0 };
            let coeffs = dchag_tensor::simd::AdamParams {
                beta1: self.beta1,
                beta2: self.beta2,
                bias_c1: bc1,
                bias_c2: bc2,
                lr: self.lr,
                eps: self.eps,
                weight_decay: decay,
            };
            let mut mdat = m_prev.into_data();
            let mut vdat = v_prev.into_data();
            let mut m_slot = None;
            let mut v_slot = None;
            let master_prev = self.master[i].take();
            let mut master_slot = None;
            store.update(id, |p| {
                // bf16-stored params step against the f32 master copy
                // (seeded from the stored value on first touch); f32 params
                // reuse the parameter buffer directly.
                let bf16 = p.dtype() == DType::Bf16;
                let mut pdat = if bf16 {
                    master_prev
                        .map(|t| t.into_data())
                        .unwrap_or_else(|| p.to_vec())
                } else {
                    p.into_data()
                };
                dchag_tensor::simd::adamw_sweep(&mut pdat, &mut mdat, &mut vdat, g.data(), &coeffs);
                m_slot = Some(Tensor::from_vec(mdat, shape.clone()));
                v_slot = Some(Tensor::from_vec(vdat, shape.clone()));
                let updated = Tensor::from_vec(pdat, shape.clone());
                if bf16 {
                    let stored = updated.to_dtype(DType::Bf16);
                    master_slot = Some(updated);
                    stored
                } else {
                    updated
                }
            });
            self.m[i] = m_slot;
            self.v[i] = v_slot;
            self.master[i] = master_slot;
        }
    }
}

/// Scale all gradients so the global L2 norm is at most `max_norm`.
/// Returns the pre-clip norm.
pub fn clip_global_norm(grads: &mut [Option<Tensor>], max_norm: f32) -> f32 {
    let mut sq = 0f64;
    for g in grads.iter().flatten() {
        for &x in g.data() {
            sq += (x as f64) * (x as f64);
        }
    }
    let norm = sq.sqrt() as f32;
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for g in grads.iter_mut().flatten() {
            // Reuse the gradient buffer when uniquely owned (the common
            // case after the tape is dropped) instead of reallocating.
            let shape = g.shape().clone();
            let mut data = std::mem::replace(g, Tensor::scalar(0.0)).into_data();
            for x in data.iter_mut() {
                *x *= scale;
            }
            *g = Tensor::from_vec(data, shape);
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quad_store() -> (ParamStore, ParamId) {
        let mut s = ParamStore::new();
        let id = s.add("x", Tensor::from_vec(vec![5.0, -3.0], [2]));
        (s, id)
    }

    #[test]
    fn adamw_descends_quadratic() {
        // minimize |x|² — gradient = 2x
        let (mut store, id) = quad_store();
        let mut opt = AdamW::new(0.1);
        for _ in 0..200 {
            let g = store.get(id).map(|x| 2.0 * x);
            opt.step(&mut store, &[Some(g)]);
        }
        assert!(store.get(id).max_abs() < 0.1, "{:?}", store.get(id));
    }

    #[test]
    fn skips_params_without_grads() {
        let (mut store, id) = quad_store();
        let before = store.get(id).to_vec();
        let mut opt = AdamW::new(0.1);
        opt.step(&mut store, &[None]);
        assert_eq!(store.get(id).to_vec(), before);
    }

    #[test]
    fn weight_decay_only_on_matrices() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::ones([2, 2]));
        let b = store.add("b", Tensor::ones([2]));
        let mut opt = AdamW::new(0.0).with_weight_decay(0.5);
        // zero-valued grads: pure decay effect
        opt.step(
            &mut store,
            &[Some(Tensor::zeros([2, 2])), Some(Tensor::zeros([2]))],
        );
        // lr = 0 -> even decay is scaled by lr, nothing changes
        assert_eq!(store.get(w).to_vec(), vec![1.0; 4]);
        let mut opt = AdamW::new(0.1).with_weight_decay(0.5);
        opt.step(
            &mut store,
            &[Some(Tensor::zeros([2, 2])), Some(Tensor::zeros([2]))],
        );
        assert!(store.get(w).at(0) < 1.0, "matrix decayed");
        assert_eq!(store.get(b).to_vec(), vec![1.0, 1.0], "bias not decayed");
    }

    #[test]
    fn clip_scales_down_large_grads() {
        let mut grads = vec![Some(Tensor::full([4], 3.0)), None];
        let norm = clip_global_norm(&mut grads, 1.0);
        assert!((norm - 6.0).abs() < 1e-5);
        let clipped: f32 = grads[0]
            .as_ref()
            .unwrap()
            .data()
            .iter()
            .map(|x| x * x)
            .sum::<f32>()
            .sqrt();
        assert!((clipped - 1.0).abs() < 1e-5);
    }

    #[test]
    fn clip_leaves_small_grads_alone() {
        let mut grads = vec![Some(Tensor::full([2], 0.1))];
        clip_global_norm(&mut grads, 10.0);
        assert_eq!(grads[0].as_ref().unwrap().to_vec(), vec![0.1, 0.1]);
    }

    #[test]
    fn bf16_params_descend_with_f32_master() {
        // Same quadratic as the f32 test, but the parameter is *stored* in
        // bf16; the optimizer must keep it in bf16 storage while the master
        // copy carries the f32 trajectory.
        let mut store = ParamStore::new();
        let id = store.add(
            "x",
            Tensor::from_vec(vec![5.0, -3.0], [2]).to_dtype(DType::Bf16),
        );
        let mut opt = AdamW::new(0.1);
        for _ in 0..200 {
            let gv: Vec<f32> = store.get(id).to_vec().iter().map(|x| 2.0 * x).collect();
            opt.step(&mut store, &[Some(Tensor::from_vec(gv, [2]))]);
        }
        assert_eq!(store.get(id).dtype(), DType::Bf16);
        let decoded = store.get(id).to_dtype(DType::F32);
        assert!(decoded.max_abs() < 0.1, "{:?}", decoded.to_vec());
    }

    #[test]
    fn bf16_master_accumulates_sub_ulp_updates() {
        // lr · ĝ ≈ 1e-4 per step is far below one bf16 ulp at 1.0 (~4e-3):
        // without the f32 master every step would round back to exactly 1.0
        // and the parameter would never move.
        let mut store = ParamStore::new();
        let id = store.add("x", Tensor::ones([4]).to_dtype(DType::Bf16));
        let mut opt = AdamW::new(1e-4);
        for _ in 0..60 {
            opt.step(&mut store, &[Some(Tensor::ones([4]))]);
        }
        assert_eq!(store.get(id).dtype(), DType::Bf16);
        assert!(
            store.get(id).at(0) < 1.0,
            "master must carry sub-ulp updates, got {}",
            store.get(id).at(0)
        );
    }

    #[test]
    fn checkpoint_optimizer_state_roundtrip_continues_bitwise() {
        // Splitting a run at step 10 through export/import must give the
        // exact trajectory of the uninterrupted run — including the bias
        // correction (t) and the bf16 master copies.
        let build = || {
            let mut s = ParamStore::new();
            s.add("w", Tensor::from_vec(vec![5.0, -3.0, 2.0, -1.0], [2, 2]));
            s.add("xb", Tensor::from_vec(vec![1.0, 0.5], [2]).to_dtype(DType::Bf16));
            s
        };
        let grads = |store: &ParamStore| -> Vec<Option<Tensor>> {
            store
                .iter()
                .map(|(_, _, t)| {
                    let g: Vec<f32> = t.to_vec().iter().map(|x| 2.0 * x).collect();
                    Some(Tensor::from_vec(g, t.shape().clone()))
                })
                .collect()
        };
        // Uninterrupted: 20 steps.
        let mut store_a = build();
        let mut opt_a = AdamW::new(0.05).with_weight_decay(0.1);
        for _ in 0..20 {
            let g = grads(&store_a);
            opt_a.step(&mut store_a, &g);
        }
        // Interrupted: 10 steps, checkpoint, restore into *fresh* objects
        // (reversed registration order to exercise name matching), 10 more.
        let mut store_b = build();
        let mut opt_b = AdamW::new(0.05).with_weight_decay(0.1);
        for _ in 0..10 {
            let g = grads(&store_b);
            opt_b.step(&mut store_b, &g);
        }
        let state = opt_b.export_state(&store_b);
        let snap: Vec<(String, Tensor)> = store_b
            .iter()
            .map(|(_, n, t)| (n.to_string(), t.clone()))
            .collect();

        let mut store_c = ParamStore::new();
        store_c.add("xb", Tensor::zeros([2]).to_dtype(DType::Bf16));
        store_c.add("w", Tensor::zeros([2, 2]));
        for (name, value) in &snap {
            let id = store_c.ids().find(|&i| store_c.name(i) == name).unwrap();
            store_c.set(id, value.clone());
        }
        let mut opt_c = AdamW::new(0.05).with_weight_decay(0.1);
        opt_c.import_state(&store_c, &state);
        assert_eq!(opt_c.steps(), 10);
        for _ in 0..10 {
            let g = grads(&store_c);
            opt_c.step(&mut store_c, &g);
        }
        for (_, name, want) in store_a.iter() {
            let id = store_c.ids().find(|&i| store_c.name(i) == name).unwrap();
            let got = store_c.get(id);
            assert_eq!(got.dtype(), want.dtype(), "{name}");
            assert_eq!(
                got.to_vec().iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                want.to_vec().iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "{name} must match bitwise"
            );
        }
    }

    #[test]
    fn determinism_same_seed_same_trajectory() {
        let run = || {
            let (mut store, id) = quad_store();
            let mut opt = AdamW::new(0.05);
            for _ in 0..50 {
                let g = store.get(id).map(|x| 2.0 * x);
                opt.step(&mut store, &[Some(g)]);
            }
            store.get(id).to_vec()
        };
        assert_eq!(run(), run());
    }
}
