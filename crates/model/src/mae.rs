//! Masked-autoencoder wrapper (paper §5.1, Fig. 10): mask spatial patches
//! after channel aggregation, encode the visible ones, reconstruct all
//! channels of the masked patches with a lightweight decoder.

use dchag_tensor::ops;
use dchag_tensor::prelude::*;
use dchag_tensor::Shape;

use crate::config::{ModelConfig, TreeConfig};
use crate::embeddings::PosEmbed;
use crate::encoder::{EncoderBackbone, FmEncoder};
use crate::layers::{LayerNorm, Linear};
use crate::vit::TransformerBlock;

/// A spatial patch mask shared across the batch.
#[derive(Clone, Debug)]
pub struct PatchMask {
    /// Patch indices the encoder sees, ascending.
    pub visible: Vec<usize>,
    /// Patch indices to reconstruct, ascending.
    pub masked: Vec<usize>,
    /// Total patch count.
    pub total: usize,
}

impl PatchMask {
    /// Random mask of `ratio` of the `total` patches.
    ///
    /// One mask per batch (not per sample) — a simplification over MAE's
    /// per-sample masks that keeps token selection a shared index list; the
    /// masking statistics that drive learning are unchanged.
    pub fn random(total: usize, ratio: f32, rng: &mut Rng) -> Self {
        assert!((0.0..1.0).contains(&ratio));
        let n_masked = ((total as f32) * ratio).round() as usize;
        let n_masked = n_masked.min(total.saturating_sub(1)).max(1);
        let perm = rng.permutation(total);
        let mut masked: Vec<usize> = perm[..n_masked].to_vec();
        let mut visible: Vec<usize> = perm[n_masked..].to_vec();
        masked.sort_unstable();
        visible.sort_unstable();
        PatchMask {
            visible,
            masked,
            total,
        }
    }

    /// The permutation that reorders `[visible ++ masked]` back to patch
    /// order: `inverse[p] = position of patch p in the concatenation`.
    pub fn inverse_permutation(&self) -> Vec<usize> {
        let mut inv = vec![0usize; self.total];
        for (i, &p) in self.visible.iter().chain(self.masked.iter()).enumerate() {
            inv[p] = i;
        }
        inv
    }

    /// Mask ratio actually realized.
    pub fn ratio(&self) -> f32 {
        self.masked.len() as f32 / self.total as f32
    }
}

/// MAE = encoder on visible tokens + decoder over the full grid.
///
/// Generic over the backbone so the D-CHAG distributed encoder slots in
/// without touching the task head.
pub struct MaeModel<E: EncoderBackbone = FmEncoder> {
    pub enc: E,
    pub dec_embed: Linear,
    pub mask_token: ParamId,
    pub dec_pos: PosEmbed,
    pub dec_blocks: Vec<TransformerBlock>,
    pub dec_ln: LayerNorm,
    pub head: Linear,
}

impl MaeModel<FmEncoder> {
    /// Single-device MAE with the standard encoder.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut Rng,
        cfg: &ModelConfig,
        base_seed: u64,
        tree: TreeConfig,
    ) -> Self {
        let enc = FmEncoder::new(store, rng, cfg, base_seed, tree);
        Self::with_encoder(store, rng, enc)
    }
}

impl<E: EncoderBackbone> MaeModel<E> {
    /// Attach the MAE decoder head to any backbone (decoder parameters are
    /// drawn from `rng` after the encoder's).
    pub fn with_encoder(store: &mut ParamStore, rng: &mut Rng, enc: E) -> Self {
        let cfg = enc.config().clone();
        let dd = cfg.decoder_dim;
        let dec_embed = Linear::new(store, rng, "dec.embed", cfg.embed_dim, dd, true);
        let mask_token = store.add(
            "dec.mask_token",
            dchag_tensor::init::trunc_normal(&[1, dd], 0.02, rng),
        );
        let dec_pos = PosEmbed::new(store, rng, "dec.pos_embed", cfg.num_patches(), dd);
        let dec_blocks = (0..cfg.decoder_depth)
            .map(|i| {
                TransformerBlock::new(store, rng, &format!("dec.blk{i}"), dd, cfg.heads.min(dd / 4).max(1), dd * 2)
            })
            .collect();
        let dec_ln = LayerNorm::new(store, "dec.ln", dd);
        let head = Linear::new(
            store,
            rng,
            "dec.head",
            dd,
            cfg.patch * cfg.patch * cfg.out_channels,
            true,
        );
        MaeModel {
            enc,
            dec_embed,
            mask_token,
            dec_pos,
            dec_blocks,
            dec_ln,
            head,
        }
    }

    /// Reconstruction target: `[B,C,H,W] -> [B, P, C·p²]` (channel-major
    /// per patch, matching the head's output layout).
    pub fn target_patches(&self, images: &Tensor) -> Tensor {
        let cfg = self.enc.config();
        let patches = ops::patchify(images, cfg.patch); // [B, C, P, p²]
        let by_pos = ops::swap_axes12(&patches); // [B, P, C, p²]
        let (b, p) = (by_pos.dims()[0], by_pos.dims()[1]);
        by_pos.reshape(&[b, p, cfg.out_channels * cfg.patch * cfg.patch])
    }

    /// Run the decoder over an embedded-and-masked token sequence.
    fn decode(&self, bind: &dyn Binder, visible_encoded: &Var, mask: &PatchMask) -> Var {
        let tape = bind.tape();
        let b = visible_encoded.dims()[0];
        let dd = self.dec_embed.out_dim;
        let n_masked = mask.masked.len();

        let vis = self.dec_embed.forward(bind, visible_encoded); // [B, Pv, Dd]

        // [B, Pm, Dd] of mask tokens.
        let mt = bind.bind(self.mask_token); // [1, Dd]
        let mt_rows: Vec<Var> = (0..n_masked).map(|_| mt.clone()).collect();
        let mt_refs: Vec<&Var> = mt_rows.iter().collect();
        let mt_block = tape.concat(&mt_refs, 0); // [Pm, Dd]
        let mt_batch = tape.broadcast_to_batch(&mt_block, b);

        // Restore patch order, add decoder positions, run blocks.
        let seq = tape.concat(&[&vis, &mt_batch], 1); // [B, P, Dd] permuted
        let restored = tape.select_axis1(&seq, &mask.inverse_permutation());
        let mut h = self.dec_pos.forward(bind, &restored);
        for blk in &self.dec_blocks {
            h = blk.forward(bind, &h);
        }
        let h = self.dec_ln.forward(bind, &h);
        let _ = dd;
        self.head.forward(bind, &h) // [B, P, C·p²]
    }

    /// Full forward pass: returns `(masked-MSE loss, prediction [B,P,C·p²])`.
    pub fn forward_loss(&self, bind: &dyn Binder, images: &Tensor, mask: &PatchMask) -> (Var, Var) {
        let tape = bind.tape();
        let cfg = self.enc.config();
        assert_eq!(mask.total, cfg.num_patches());

        let x = self.enc.embed(bind, images); // [B, P, D]
        let visible = tape.select_axis1(&x, &mask.visible);
        let encoded = self.enc.encode(bind, &visible);
        let pred = self.decode(bind, &encoded, mask);

        let target = tape.constant(self.target_patches(images));
        let loss_mask = self.loss_mask(images.dims()[0], mask);
        let loss = tape.masked_mse(&pred, &target, &loss_mask);
        (loss, pred)
    }

    /// Binary mask `[B, P, C·p²]`: ones on masked patches.
    fn loss_mask(&self, b: usize, mask: &PatchMask) -> Tensor {
        let cfg = self.enc.config();
        let row = cfg.out_channels * cfg.patch * cfg.patch;
        let p = cfg.num_patches();
        let mut data = vec![0.0f32; b * p * row];
        for bi in 0..b {
            for &m in &mask.masked {
                let off = (bi * p + m) * row;
                data[off..off + row].fill(1.0);
            }
        }
        Tensor::from_vec(data, Shape::new(&[b, p, row]))
    }

    /// Reassemble a full predicted image `[B, C, H, W]` from patch
    /// predictions (visualization path, plain value computation).
    pub fn reconstruct(&self, pred_patches: &Tensor) -> Tensor {
        let cfg = self.enc.config();
        let (b, p) = (pred_patches.dims()[0], pred_patches.dims()[1]);
        let by_pos = pred_patches.reshape(&[b, p, cfg.out_channels, cfg.patch * cfg.patch]);
        let by_chan = ops::swap_axes12(&by_pos); // [B, C, P, p²]
        ops::unpatchify(&by_chan, cfg.img_h, cfg.img_w, cfg.patch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::UnitKind;

    fn tiny_mae() -> (ParamStore, MaeModel) {
        let mut store = ParamStore::new();
        let mut rng = Rng::new(3);
        let cfg = ModelConfig::tiny(4);
        let mae = MaeModel::new(
            &mut store,
            &mut rng,
            &cfg,
            77,
            TreeConfig::tree0(UnitKind::Linear),
        );
        (store, mae)
    }

    #[test]
    fn mask_partitions_patches() {
        let mut rng = Rng::new(1);
        let m = PatchMask::random(16, 0.75, &mut rng);
        assert_eq!(m.visible.len() + m.masked.len(), 16);
        assert_eq!(m.masked.len(), 12);
        let mut all: Vec<usize> = m.visible.iter().chain(&m.masked).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn inverse_permutation_restores_order() {
        let mut rng = Rng::new(2);
        let m = PatchMask::random(8, 0.5, &mut rng);
        let concat: Vec<usize> = m.visible.iter().chain(&m.masked).copied().collect();
        let inv = m.inverse_permutation();
        for p in 0..8 {
            assert_eq!(concat[inv[p]], p);
        }
    }

    #[test]
    fn forward_loss_runs_and_is_finite() {
        let (store, mae) = tiny_mae();
        let tape = Tape::new();
        let bind = LocalBinder::new(&tape, &store);
        let mut rng = Rng::new(4);
        let imgs = Tensor::randn([2, 4, 16, 16], 1.0, &mut rng);
        let mask = PatchMask::random(16, 0.75, &mut rng);
        let (loss, pred) = mae.forward_loss(&bind, &imgs, &mask);
        assert!(loss.value().item().is_finite());
        assert!(loss.value().item() > 0.0);
        assert_eq!(pred.dims(), &[2, 16, 4 * 16]);
    }

    #[test]
    fn loss_ignores_visible_patches() {
        // Perturbing the prediction at visible positions must not change the
        // loss (it is masked out) — verified through the mask construction.
        let (_, mae) = tiny_mae();
        let mut rng = Rng::new(5);
        let mask = PatchMask::random(16, 0.5, &mut rng);
        let lm = mae.loss_mask(1, &mask);
        for &v in &mask.visible {
            let row = 4 * 16;
            let off = v * row;
            assert!(lm.data()[off..off + row].iter().all(|&x| x == 0.0));
        }
        for &m in &mask.masked {
            let row = 4 * 16;
            let off = m * row;
            assert!(lm.data()[off..off + row].iter().all(|&x| x == 1.0));
        }
    }

    #[test]
    fn reconstruct_roundtrips_target() {
        // Feeding the target patches through reconstruct() recovers images.
        let (_, mae) = tiny_mae();
        let mut rng = Rng::new(6);
        let imgs = Tensor::randn([1, 4, 16, 16], 1.0, &mut rng);
        let target = mae.target_patches(&imgs);
        let back = mae.reconstruct(&target);
        assert!(back.max_abs_diff(&imgs) < 1e-6);
    }

    #[test]
    fn one_training_step_reduces_loss_on_fixed_batch() {
        let (mut store, mae) = tiny_mae();
        let mut rng = Rng::new(7);
        let imgs = Tensor::randn([2, 4, 16, 16], 0.5, &mut rng);
        let mask = PatchMask::random(16, 0.5, &mut rng);
        let mut opt = crate::optim::AdamW::new(1e-2);
        let mut losses = Vec::new();
        for _ in 0..8 {
            let tape = Tape::new();
            let bind = LocalBinder::new(&tape, &store);
            let (loss, _) = mae.forward_loss(&bind, &imgs, &mask);
            losses.push(loss.value().item());
            let grads = tape.backward(&loss);
            let mut pg = bind.grads(&grads);
            crate::optim::clip_global_norm(&mut pg, 5.0);
            opt.step(&mut store, &pg);
        }
        assert!(
            losses.last().unwrap() < losses.first().unwrap(),
            "{losses:?}"
        );
    }
}
