//! Reusable building blocks: Linear, LayerNorm, MLP.
//!
//! Modules hold [`ParamId`]s into a [`ParamStore`]; the forward pass binds
//! them onto the current tape through a [`Binder`], which is where the
//! distributed strategies (FSDP gather, TP sharding) interpose.

use dchag_tensor::init;
use dchag_tensor::prelude::*;

/// Fully-connected layer `[..., in] -> [..., out]`.
pub struct Linear {
    pub w: ParamId,
    pub b: Option<ParamId>,
    pub in_dim: usize,
    pub out_dim: usize,
}

impl Linear {
    pub fn new(
        store: &mut ParamStore,
        rng: &mut Rng,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        bias: bool,
    ) -> Self {
        let w = store.add(
            format!("{name}.w"),
            init::xavier_uniform(in_dim, out_dim, rng),
        );
        let b = bias.then(|| store.add(format!("{name}.b"), Tensor::zeros([out_dim])));
        Linear {
            w,
            b,
            in_dim,
            out_dim,
        }
    }

    pub fn forward(&self, bind: &dyn Binder, x: &Var) -> Var {
        let tape = bind.tape();
        debug_assert_eq!(
            *x.dims().last().unwrap(),
            self.in_dim,
            "Linear input width"
        );
        match self.b {
            // Fused kernel: bias broadcast into the GEMM output buffer,
            // one tape node, no intermediate `x·W` tensor.
            Some(b) => tape.matmul_bias(x, &bind.bind(self.w), &bind.bind(b)),
            None => tape.matmul(x, &bind.bind(self.w)),
        }
    }

    /// Fused `gelu(x·W + b)` forward (the MLP up-projection). Falls back to
    /// the unfused pair when the layer has no bias.
    pub fn forward_gelu(&self, bind: &dyn Binder, x: &Var) -> Var {
        let tape = bind.tape();
        match self.b {
            Some(b) => tape.linear_gelu(x, &bind.bind(self.w), &bind.bind(b)),
            None => tape.gelu(&tape.matmul(x, &bind.bind(self.w))),
        }
    }
}

/// LayerNorm over the last axis with learned affine.
pub struct LayerNorm {
    pub gamma: ParamId,
    pub beta: ParamId,
    pub dim: usize,
}

impl LayerNorm {
    pub fn new(store: &mut ParamStore, name: &str, dim: usize) -> Self {
        let gamma = store.add(format!("{name}.gamma"), Tensor::ones([dim]));
        let beta = store.add(format!("{name}.beta"), Tensor::zeros([dim]));
        LayerNorm { gamma, beta, dim }
    }

    pub fn forward(&self, bind: &dyn Binder, x: &Var) -> Var {
        bind.tape()
            .layernorm(x, &bind.bind(self.gamma), &bind.bind(self.beta))
    }
}

/// Two-layer GELU MLP (the transformer feed-forward block).
pub struct Mlp {
    pub fc1: Linear,
    pub fc2: Linear,
}

impl Mlp {
    pub fn new(
        store: &mut ParamStore,
        rng: &mut Rng,
        name: &str,
        dim: usize,
        hidden: usize,
    ) -> Self {
        Mlp {
            fc1: Linear::new(store, rng, &format!("{name}.fc1"), dim, hidden, true),
            fc2: Linear::new(store, rng, &format!("{name}.fc2"), hidden, dim, true),
        }
    }

    pub fn forward(&self, bind: &dyn Binder, x: &Var) -> Var {
        let h = self.fc1.forward_gelu(bind, x);
        self.fc2.forward(bind, &h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dchag_tensor::autograd::check::grad_check;

    fn setup() -> (ParamStore, Rng) {
        (ParamStore::new(), Rng::new(42))
    }

    #[test]
    fn linear_shapes() {
        let (mut store, mut rng) = setup();
        let lin = Linear::new(&mut store, &mut rng, "l", 8, 3, true);
        let tape = Tape::new();
        let bind = LocalBinder::new(&tape, &store);
        let x = tape.leaf(Tensor::randn([2, 5, 8], 1.0, &mut rng));
        let y = lin.forward(&bind, &x);
        assert_eq!(y.dims(), &[2, 5, 3]);
    }

    #[test]
    fn linear_zero_input_gives_bias() {
        let (mut store, mut rng) = setup();
        let lin = Linear::new(&mut store, &mut rng, "l", 4, 2, true);
        store.set(lin.b.unwrap(), Tensor::from_vec(vec![1.5, -2.5], [2]));
        let tape = Tape::new();
        let bind = LocalBinder::new(&tape, &store);
        let x = tape.leaf(Tensor::zeros([3, 4]));
        let y = lin.forward(&bind, &x);
        assert_eq!(y.value().to_vec(), vec![1.5, -2.5, 1.5, -2.5, 1.5, -2.5]);
    }

    #[test]
    fn mlp_gradcheck_through_params() {
        let (mut store, mut rng) = setup();
        let mlp = Mlp::new(&mut store, &mut rng, "m", 4, 8);
        let x0 = Tensor::randn([3, 4], 0.5, &mut rng);
        // grad-check wrt input by closing over params
        grad_check(
            &[x0],
            |tape, leaves| {
                let bind = LocalBinder::new(tape, &store);
                let y = mlp.forward(&bind, &leaves[0]);
                tape.sum_all(&tape.mul(&y, &y))
            },
            3e-2,
        );
    }

    #[test]
    fn layernorm_layer_normalizes() {
        let (mut store, mut rng) = setup();
        let ln = LayerNorm::new(&mut store, "ln", 16);
        let tape = Tape::new();
        let bind = LocalBinder::new(&tape, &store);
        let x = tape.leaf(Tensor::randn([4, 16], 3.0, &mut rng));
        let y = ln.forward(&bind, &x);
        for row in y.value().data().chunks(16) {
            let mu: f32 = row.iter().sum::<f32>() / 16.0;
            assert!(mu.abs() < 1e-5);
        }
    }

    #[test]
    fn params_receive_gradients() {
        let (mut store, mut rng) = setup();
        let lin = Linear::new(&mut store, &mut rng, "l", 4, 2, true);
        let tape = Tape::new();
        let bind = LocalBinder::new(&tape, &store);
        let x = tape.leaf(Tensor::randn([3, 4], 1.0, &mut rng));
        let y = lin.forward(&bind, &x);
        let loss = tape.sum_all(&tape.mul(&y, &y));
        let grads = tape.backward(&loss);
        let pgrads = bind.grads(&grads);
        assert!(pgrads[lin.w.index()].is_some());
        assert!(pgrads[lin.b.unwrap().index()].is_some());
    }
}
