//! Model configuration and the paper's named presets.

/// Kind of aggregation unit inside a channel-aggregation module.
///
/// The paper's `-C` variants use cross-attention units; `-L` variants use
/// lightweight linear (channel-mixing) units. The *final* shared layer is
/// always cross-attention (paper §3.3).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UnitKind {
    /// Full cross-attention over the unit's input channels (quadratic
    /// memory in the channel count).
    CrossAttention,
    /// Linear channel mixing (linear memory, far fewer parameters).
    Linear,
}

impl UnitKind {
    pub fn suffix(&self) -> &'static str {
        match self {
            UnitKind::CrossAttention => "-C",
            UnitKind::Linear => "-L",
        }
    }
}

/// Hierarchy layout of a channel-aggregation module (paper §3.2, Fig. 3).
///
/// `Tree(g)` splits the input channels into `g` first-level groups, each
/// handled by its own aggregation unit; a second-level unit then reduces the
/// `g` partial tokens to one. `Tree(0)` (the paper's "Tree0") is a single
/// unit over all channels.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TreeConfig {
    pub groups: usize,
    pub unit: UnitKind,
}

impl TreeConfig {
    pub fn tree0(unit: UnitKind) -> Self {
        TreeConfig { groups: 0, unit }
    }

    pub fn tree(groups: usize, unit: UnitKind) -> Self {
        TreeConfig { groups, unit }
    }

    /// Paper-style display name, e.g. "Tree2-L".
    pub fn name(&self) -> String {
        format!("Tree{}{}", self.groups, self.unit.suffix())
    }

    /// Number of first-level units actually instantiated for `channels`.
    pub fn level1_units(&self, channels: usize) -> usize {
        if self.groups <= 1 {
            1
        } else {
            self.groups.min(channels)
        }
    }

    /// Maximum input channels seen by any first-level unit.
    pub fn max_channels_per_unit(&self, channels: usize) -> usize {
        channels.div_ceil(self.level1_units(channels))
    }
}

/// Full architecture description of the foundation model (paper Fig. 1).
#[derive(Clone, Debug, PartialEq)]
pub struct ModelConfig {
    /// Transformer embedding width.
    pub embed_dim: usize,
    /// Number of transformer (ViT) blocks.
    pub depth: usize,
    /// Attention heads.
    pub heads: usize,
    /// MLP hidden = `mlp_ratio · embed_dim`.
    pub mlp_ratio: usize,
    /// Patch side length.
    pub patch: usize,
    /// Input image height/width.
    pub img_h: usize,
    pub img_w: usize,
    /// Input channel count (the axis D-CHAG distributes).
    pub channels: usize,
    /// Output channels of the task head (forecast variables or
    /// reconstruction channels).
    pub out_channels: usize,
    /// MAE decoder width / depth (0 depth = linear decoder).
    pub decoder_dim: usize,
    pub decoder_depth: usize,
}

impl ModelConfig {
    /// Patches per image.
    pub fn num_patches(&self) -> usize {
        assert!(self.img_h.is_multiple_of(self.patch) && self.img_w.is_multiple_of(self.patch));
        (self.img_h / self.patch) * (self.img_w / self.patch)
    }

    pub fn head_dim(&self) -> usize {
        assert!(self.embed_dim.is_multiple_of(self.heads), "heads must divide embed");
        self.embed_dim / self.heads
    }

    pub fn mlp_dim(&self) -> usize {
        self.embed_dim * self.mlp_ratio
    }

    /// Approximate transformer-block parameter count (the figure used when
    /// the paper says "7B model"): `depth · 12 · d²`.
    pub fn transformer_params(&self) -> u64 {
        self.depth as u64 * 12 * (self.embed_dim as u64).pow(2)
    }

    /// Per-channel tokenizer parameters: conv `p²→d` plus bias plus the
    /// channel-ID embedding.
    pub fn tokenizer_params(&self) -> u64 {
        self.channels as u64
            * ((self.patch * self.patch * self.embed_dim) as u64
                + 2 * self.embed_dim as u64)
    }

    pub fn with_channels(mut self, channels: usize) -> Self {
        self.channels = channels;
        self
    }

    pub fn with_image(mut self, h: usize, w: usize, patch: usize) -> Self {
        self.img_h = h;
        self.img_w = w;
        self.patch = patch;
        self
    }

    fn base(embed_dim: usize, depth: usize, heads: usize) -> Self {
        ModelConfig {
            embed_dim,
            depth,
            heads,
            mlp_ratio: 4,
            patch: 16,
            img_h: 224,
            img_w: 224,
            channels: 128,
            out_channels: 128,
            decoder_dim: embed_dim / 2,
            decoder_depth: 1,
        }
    }

    // ----- the paper's named model sizes ------------------------------------

    /// "100M" single-GPU analysis model (Fig. 6).
    pub fn p100m() -> Self {
        Self::base(768, 12, 12)
    }

    /// "1B" single-GPU analysis model (Fig. 6).
    pub fn p1b() -> Self {
        Self::base(1792, 24, 16)
    }

    /// "3B" single-GPU analysis model (Fig. 6).
    pub fn p3b() -> Self {
        Self::base(2560, 32, 20)
    }

    /// "1.7B" TP-analysis model (Figs. 7–9).
    pub fn p1_7b() -> Self {
        Self::base(2048, 32, 16)
    }

    /// "7B": 4096 embed, 32 layers, 32 heads (paper §6.1).
    pub fn p7b() -> Self {
        Self::base(4096, 32, 32)
    }

    /// "15B": 6144 embed, 32 layers, 32 heads (paper §6.1).
    pub fn p15b() -> Self {
        Self::base(6144, 32, 32)
    }

    /// "26B": 8192 embed, 32 layers, 32 heads (paper §6.1).
    pub fn p26b() -> Self {
        Self::base(8192, 32, 32)
    }

    /// "40M" MAE model for the hyperspectral evaluation (Fig. 11).
    pub fn mae40m() -> Self {
        let mut c = Self::base(512, 8, 8);
        c.decoder_dim = 256;
        c.decoder_depth = 2;
        c.channels = 500;
        c.out_channels = 500;
        c
    }

    /// "53M" ClimaX-style model for the weather evaluation (Fig. 12).
    pub fn climax53m() -> Self {
        let mut c = Self::base(640, 8, 8);
        c.img_h = 32;
        c.img_w = 64;
        c.patch = 4;
        c.channels = 80;
        c.out_channels = 80;
        c
    }

    /// Tiny config for unit tests and CPU training runs.
    pub fn tiny(channels: usize) -> Self {
        ModelConfig {
            embed_dim: 32,
            depth: 2,
            heads: 4,
            mlp_ratio: 2,
            patch: 4,
            img_h: 16,
            img_w: 16,
            channels,
            out_channels: channels,
            decoder_dim: 16,
            decoder_depth: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sizes_match_stated_params() {
        // §6.1 gives exact (embed, depth, heads); check ~params land near
        // the names.
        let within = |cfg: ModelConfig, b: f64, tol: f64| {
            let p = cfg.transformer_params() as f64 / 1e9;
            assert!((p - b).abs() / b < tol, "{p} vs {b}");
        };
        within(ModelConfig::p7b(), 6.4, 0.15);
        within(ModelConfig::p15b(), 14.5, 0.15);
        within(ModelConfig::p26b(), 25.8, 0.15);
        within(ModelConfig::p1_7b(), 1.6, 0.15);
    }

    #[test]
    fn patches_and_head_dim() {
        let c = ModelConfig::climax53m();
        assert_eq!(c.num_patches(), (32 / 4) * (64 / 4));
        assert_eq!(c.head_dim(), 80);
    }

    #[test]
    fn tree_config_worked_example() {
        // Paper §4.5: 512 channels on two GPUs -> 256 per GPU.
        // Tree2 => two units with max 128 channels each;
        // Tree8 => eight units with max 32 channels each.
        let t2 = TreeConfig::tree(2, UnitKind::CrossAttention);
        assert_eq!(t2.level1_units(256), 2);
        assert_eq!(t2.max_channels_per_unit(256), 128);
        let t8 = TreeConfig::tree(8, UnitKind::Linear);
        assert_eq!(t8.level1_units(256), 8);
        assert_eq!(t8.max_channels_per_unit(256), 32);
        let t0 = TreeConfig::tree0(UnitKind::Linear);
        assert_eq!(t0.level1_units(256), 1);
        assert_eq!(t0.max_channels_per_unit(256), 256);
        assert_eq!(t0.name(), "Tree0-L");
    }

    #[test]
    fn tree_units_never_exceed_channels() {
        let t = TreeConfig::tree(8, UnitKind::Linear);
        assert_eq!(t.level1_units(3), 3);
    }
}
