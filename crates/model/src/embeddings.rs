//! Special tokens (paper §2.1): channel-ID embeddings, 2-D positional
//! embeddings, and the metadata (lead-time) token.

use dchag_tensor::prelude::*;
use dchag_tensor::{init, Shape};

/// Sub-stream tag for channel-ID embedding init (see tokenizer for W/B).
const STREAM_E: u64 = 0x65_6d;

/// Learned per-channel ID embeddings, added to every token of the channel.
/// Like the tokenizer, initialization is keyed by global channel id so the
/// distributed and single-device layouts hold identical weights.
pub struct ChannelEmbed {
    pub channels: Vec<usize>,
    ids: Vec<ParamId>,
    pub dim: usize,
}

impl ChannelEmbed {
    pub fn new(store: &mut ParamStore, base_seed: u64, channels: &[usize], dim: usize) -> Self {
        let base = Rng::new(base_seed);
        let ids = channels
            .iter()
            .map(|&c| {
                let mut r = base.fork(STREAM_E ^ (c as u64).wrapping_mul(2654435761));
                store.add(format!("chan_embed.{c}"), init::trunc_normal(&[dim], 0.02, &mut r))
            })
            .collect();
        ChannelEmbed {
            channels: channels.to_vec(),
            ids,
            dim,
        }
    }

    /// `x: [B, C_local, P, D]` → same shape with `e_c` added to channel `c`.
    pub fn forward(&self, bind: &dyn Binder, x: &Var) -> Var {
        let tape = bind.tape();
        let (b, c, p, d) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
        assert_eq!(c, self.ids.len(), "channel count mismatch");
        assert_eq!(d, self.dim);

        // Stack the embeddings into [C, D] on-tape, then broadcast-add.
        let rows: Vec<Var> = self
            .ids
            .iter()
            .map(|&id| tape.reshape(&bind.bind(id), &[1, d]))
            .collect();
        let row_refs: Vec<&Var> = rows.iter().collect();
        let table = tape.concat(&row_refs, 0); // [C, D]
        let tid = table.id();
        let tval = table.value().clone();
        let xid = x.id();
        let xval = x.value().clone();

        // out[b,c,p,:] = x[b,c,p,:] + e[c,:]
        let mut out = xval.to_vec();
        for bi in 0..b {
            for ci in 0..c {
                let e = &tval.data()[ci * d..(ci + 1) * d];
                for pi in 0..p {
                    let off = ((bi * c + ci) * p + pi) * d;
                    for (o, &ev) in out[off..off + d].iter_mut().zip(e) {
                        *o += ev;
                    }
                }
            }
        }
        let out = Tensor::from_vec(out, Shape::new(&[b, c, p, d]));
        tape.custom(out, move |g, emit| {
            emit(xid, g.clone());
            // de[c,:] = Σ_{b,p} g[b,c,p,:]
            let mut de = vec![0.0f32; c * d];
            for bi in 0..b {
                for ci in 0..c {
                    for pi in 0..p {
                        let off = ((bi * c + ci) * p + pi) * d;
                        for (o, &gv) in de[ci * d..(ci + 1) * d]
                            .iter_mut()
                            .zip(&g.data()[off..off + d])
                        {
                            *o += gv;
                        }
                    }
                }
            }
            emit(tid, Tensor::from_vec(de, Shape::new(&[c, d])));
        })
    }
}

/// Learned positional embedding over the patch grid, added after channel
/// aggregation.
pub struct PosEmbed {
    pub table: ParamId,
    pub num_patches: usize,
    pub dim: usize,
}

impl PosEmbed {
    pub fn new(
        store: &mut ParamStore,
        rng: &mut Rng,
        name: &str,
        num_patches: usize,
        dim: usize,
    ) -> Self {
        PosEmbed {
            table: store.add(
                name.to_string(),
                init::trunc_normal(&[num_patches, dim], 0.02, rng),
            ),
            num_patches,
            dim,
        }
    }

    /// `x: [B, P, D]` → `x + pos`.
    pub fn forward(&self, bind: &dyn Binder, x: &Var) -> Var {
        let tape = bind.tape();
        assert_eq!(x.dims()[1], self.num_patches, "patch count mismatch");
        let pos = tape.broadcast_to_batch(&bind.bind(self.table), x.dims()[0]);
        tape.add(x, &pos)
    }
}

/// Metadata token (paper Fig. 1): a learned token modulated by a scalar
/// context (forecast lead time, acquisition time, ...), appended to the
/// ViT sequence.
pub struct MetaToken {
    pub base: ParamId,
    pub scale_w: ParamId,
    pub dim: usize,
}

impl MetaToken {
    pub fn new(store: &mut ParamStore, rng: &mut Rng, dim: usize) -> Self {
        MetaToken {
            base: store.add("meta.base", init::trunc_normal(&[1, dim], 0.02, rng)),
            scale_w: store.add("meta.scale_w", init::trunc_normal(&[1, dim], 0.02, rng)),
            dim,
        }
    }

    /// Append the metadata token for scalar context `value` to `x [B,S,D]`,
    /// returning `[B, S+1, D]`.
    pub fn append(&self, bind: &dyn Binder, x: &Var, value: f32) -> Var {
        let tape = bind.tape();
        let b = x.dims()[0];
        let tok = tape.add(
            &bind.bind(self.base),
            &tape.scale(&bind.bind(self.scale_w), value),
        ); // [1, D]
        let tok = tape.broadcast_to_batch(&tok, b); // [B, 1, D]
        tape.concat(&[x, &tok], 1)
    }
}

/// Build a latitude-weight image `[1, 1, H, W]`: `w(φ) = cos φ / mean cos φ`
/// over an equiangular grid — the standard weighting for global-forecast
/// losses and RMSE.
pub fn latitude_weights(h: usize, w: usize) -> Tensor {
    let mut lat_w = Vec::with_capacity(h);
    for i in 0..h {
        // cell-centered latitudes from +90 to -90
        let phi = std::f32::consts::PI * ((i as f32 + 0.5) / h as f32 - 0.5);
        lat_w.push(phi.cos());
    }
    let mean: f32 = lat_w.iter().sum::<f32>() / h as f32;
    let mut data = Vec::with_capacity(h * w);
    for wi in &lat_w {
        for _ in 0..w {
            data.push(wi / mean);
        }
    }
    Tensor::from_vec(data, [1, 1, h, w])
}

/// Tile a `[1, 1, P, q]` patch-space tensor to `[B, C, P, q]` (used to lift
/// latitude weights into the loss mask layout).
pub fn tile_patch_mask(mask: &Tensor, b: usize, c: usize) -> Tensor {
    assert_eq!(mask.dims()[0], 1);
    assert_eq!(mask.dims()[1], 1);
    let (p, q) = (mask.dims()[2], mask.dims()[3]);
    let mut data = Vec::with_capacity(b * c * p * q);
    for _ in 0..b * c {
        data.extend_from_slice(mask.data());
    }
    Tensor::from_vec(data, [b, c, p, q])
}

#[cfg(test)]
mod tests {
    use super::*;
    use dchag_tensor::autograd::check::grad_check;
    use dchag_tensor::ops;

    #[test]
    fn channel_embed_adds_per_channel_constant() {
        let mut store = ParamStore::new();
        let ce = ChannelEmbed::new(&mut store, 11, &[0, 1], 4);
        let tape = Tape::new();
        let bind = LocalBinder::new(&tape, &store);
        let x = tape.leaf(Tensor::zeros([1, 2, 3, 4]));
        let y = ce.forward(&bind, &x);
        // all positions of a channel share the same added vector
        let v = y.value();
        for pi in 1..3 {
            for di in 0..4 {
                assert_eq!(v.at(pi * 4 + di), v.at(di));
            }
        }
        // channels differ
        assert!(
            ops::slice(v, 1, 0, 1).max_abs_diff(&ops::slice(v, 1, 1, 1)) > 1e-4
        );
    }

    #[test]
    fn channel_embed_seeded_by_channel_id() {
        let mut s1 = ParamStore::new();
        let e1 = ChannelEmbed::new(&mut s1, 5, &[0, 1, 2, 3], 8);
        let mut s2 = ParamStore::new();
        let e2 = ChannelEmbed::new(&mut s2, 5, &[3, 1], 8);
        assert_eq!(
            s1.get(e1.ids[3]).to_vec(),
            s2.get(e2.ids[0]).to_vec()
        );
        assert_eq!(
            s1.get(e1.ids[1]).to_vec(),
            s2.get(e2.ids[1]).to_vec()
        );
    }

    #[test]
    fn channel_embed_gradcheck() {
        let mut store = ParamStore::new();
        let ce = ChannelEmbed::new(&mut store, 11, &[0, 1, 2], 4);
        let mut rng = Rng::new(1);
        let x0 = Tensor::randn([2, 3, 2, 4], 0.5, &mut rng);
        grad_check(
            &[x0],
            |tape, leaves| {
                let bind = LocalBinder::new(tape, &store);
                let y = ce.forward(&bind, &leaves[0]);
                tape.sum_all(&tape.mul(&y, &y))
            },
            2e-2,
        );
    }

    #[test]
    fn pos_embed_shifts_positions_differently() {
        let mut store = ParamStore::new();
        let mut rng = Rng::new(2);
        let pe = PosEmbed::new(&mut store, &mut rng, "pos_embed", 4, 8);
        let tape = Tape::new();
        let bind = LocalBinder::new(&tape, &store);
        let x = tape.leaf(Tensor::zeros([2, 4, 8]));
        let y = pe.forward(&bind, &x);
        let v = y.value();
        // batch 0 equals batch 1 (pure broadcast)
        assert_eq!(v.data()[..32], v.data()[32..]);
        // position rows differ
        assert!(v.data()[..8] != v.data()[8..16]);
    }

    #[test]
    fn meta_token_appends_one_token() {
        let mut store = ParamStore::new();
        let mut rng = Rng::new(3);
        let mt = MetaToken::new(&mut store, &mut rng, 8);
        let tape = Tape::new();
        let bind = LocalBinder::new(&tape, &store);
        let x = tape.leaf(Tensor::zeros([2, 3, 8]));
        let y = mt.append(&bind, &x, 0.5);
        assert_eq!(y.dims(), &[2, 4, 8]);
        // token depends on the scalar value
        let y2 = mt.append(&bind, &x, 1.5);
        assert!(
            ops::slice(y.value(), 1, 3, 1).max_abs_diff(&ops::slice(y2.value(), 1, 3, 1)) > 1e-5
        );
    }

    #[test]
    fn latitude_weights_normalized_and_polar_small() {
        let w = latitude_weights(32, 64);
        assert!((w.mean() - 1.0).abs() < 1e-4);
        // poles lighter than equator
        let north = w.at(0);
        let equator = w.at(16 * 64);
        assert!(north < equator);
    }

    #[test]
    fn tile_patch_mask_repeats() {
        let m = Tensor::from_vec(vec![1.0, 2.0], [1, 1, 1, 2]);
        let t = tile_patch_mask(&m, 2, 3);
        assert_eq!(t.dims(), &[2, 3, 1, 2]);
        assert_eq!(t.sum(), 6.0 * 3.0);
    }
}
