//! Multi-head attention (self and cross), the shared engine behind both the
//! ViT blocks (spatial self-attention) and the channel-aggregation modules
//! (cross-channel attention).

use dchag_tensor::prelude::*;

use crate::layers::Linear;

/// Multi-head attention with separate Q/K/V/O projections.
///
/// `heads` may be a *slice* of a larger logical head count — that is exactly
/// how tensor parallelism shards attention (each TP rank holds
/// `heads / tp` heads and `dim / tp` of the projection width).
pub struct MultiHeadAttention {
    pub wq: Linear,
    pub wk: Linear,
    pub wv: Linear,
    pub wo: Linear,
    /// Heads computed by this module.
    pub heads: usize,
    /// Model (input/output) width.
    pub dim: usize,
    /// Per-head width.
    pub head_dim: usize,
    /// Inner width = heads · head_dim (differs from `dim` under TP).
    pub inner_dim: usize,
}

impl MultiHeadAttention {
    pub fn new(
        store: &mut ParamStore,
        rng: &mut Rng,
        name: &str,
        dim: usize,
        heads: usize,
    ) -> Self {
        assert!(dim.is_multiple_of(heads), "heads {heads} must divide dim {dim}");
        Self::with_head_dim(store, rng, name, dim, heads, dim / heads)
    }

    /// Construct with explicit head geometry (used by the TP shards, where
    /// `heads · head_dim < dim`).
    pub fn with_head_dim(
        store: &mut ParamStore,
        rng: &mut Rng,
        name: &str,
        dim: usize,
        heads: usize,
        head_dim: usize,
    ) -> Self {
        let inner = heads * head_dim;
        MultiHeadAttention {
            wq: Linear::new(store, rng, &format!("{name}.wq"), dim, inner, true),
            wk: Linear::new(store, rng, &format!("{name}.wk"), dim, inner, true),
            wv: Linear::new(store, rng, &format!("{name}.wv"), dim, inner, true),
            wo: Linear::new(store, rng, &format!("{name}.wo"), inner, dim, true),
            heads,
            dim,
            head_dim,
            inner_dim: inner,
        }
    }

    /// `[B, S, inner] -> [B·H, S, dh]` head split.
    fn split_heads(&self, bind: &dyn Binder, x: &Var) -> Var {
        let tape = bind.tape();
        let (b, s) = (x.dims()[0], x.dims()[1]);
        let r = tape.reshape(x, &[b, s, self.heads, self.head_dim]);
        let sw = tape.swap_axes12(&r); // [B, H, S, dh]
        tape.reshape(&sw, &[b * self.heads, s, self.head_dim])
    }

    /// `[B·H, S, dh] -> [B, S, inner]` head merge.
    fn merge_heads(&self, bind: &dyn Binder, x: &Var, b: usize) -> Var {
        let tape = bind.tape();
        let s = x.dims()[1];
        let r = tape.reshape(x, &[b, self.heads, s, self.head_dim]);
        let sw = tape.swap_axes12(&r); // [B, S, H, dh]
        tape.reshape(&sw, &[b, s, self.inner_dim])
    }

    /// Self-attention over the middle axis of `[B, S, D]`.
    pub fn forward(&self, bind: &dyn Binder, x: &Var) -> Var {
        self.forward_kv(bind, x, x)
    }

    /// Cross-attention: queries from `q_in` `[B, Sq, D]`, keys/values from
    /// `kv_in` `[B, Sk, D]`. Output `[B, Sq, D]`.
    pub fn forward_kv(&self, bind: &dyn Binder, q_in: &Var, kv_in: &Var) -> Var {
        let tape = bind.tape();
        let b = q_in.dims()[0];
        assert_eq!(kv_in.dims()[0], b, "batch mismatch");

        let q = self.split_heads(bind, &self.wq.forward(bind, q_in));
        let k = self.split_heads(bind, &self.wk.forward(bind, kv_in));
        let v = self.split_heads(bind, &self.wv.forward(bind, kv_in));

        // Flash attention: one tape node, tiled online softmax, O(S) memory
        // — the `[B·H, Sq, Sk]` score matrix never materializes and the
        // 1/√d factor rides in the tile GEMM packing.
        let scale = 1.0 / (self.head_dim as f32).sqrt();
        let ctx = tape.flash_attention(&q, &k, &v, scale); // [B·H, Sq, dh]

        // Debug-only parity path: the naive composition (which *does*
        // materialize the score matrix) must agree to 1e-4 on every shape
        // the model ever runs.
        #[cfg(debug_assertions)]
        {
            let want =
                dchag_tensor::ops::naive_attention(q.value(), k.value(), v.value(), scale);
            debug_assert!(
                ctx.value().max_abs_diff(&want) <= 1e-4,
                "flash attention diverged from naive composition by {}",
                ctx.value().max_abs_diff(&want)
            );
        }

        let merged = self.merge_heads(bind, &ctx, b);
        self.wo.forward(bind, &merged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dchag_tensor::autograd::check::grad_check;

    fn mha(dim: usize, heads: usize) -> (ParamStore, MultiHeadAttention, Rng) {
        let mut store = ParamStore::new();
        let mut rng = Rng::new(7);
        let m = MultiHeadAttention::new(&mut store, &mut rng, "attn", dim, heads);
        (store, m, rng)
    }

    #[test]
    fn self_attention_shape_preserved() {
        let (store, m, mut rng) = mha(16, 4);
        let tape = Tape::new();
        let bind = LocalBinder::new(&tape, &store);
        let x = tape.leaf(Tensor::randn([2, 5, 16], 1.0, &mut rng));
        let y = m.forward(&bind, &x);
        assert_eq!(y.dims(), &[2, 5, 16]);
        assert!(y.value().all_finite());
    }

    #[test]
    fn cross_attention_output_follows_query_length() {
        let (store, m, mut rng) = mha(16, 4);
        let tape = Tape::new();
        let bind = LocalBinder::new(&tape, &store);
        let q = tape.leaf(Tensor::randn([2, 3, 16], 1.0, &mut rng));
        let kv = tape.leaf(Tensor::randn([2, 9, 16], 1.0, &mut rng));
        let y = m.forward_kv(&bind, &q, &kv);
        assert_eq!(y.dims(), &[2, 3, 16]);
    }

    #[test]
    fn permutation_of_kv_tokens_is_equivariant_for_uniform_values() {
        // With identical K/V tokens, attention output is independent of Sk
        // ordering; stronger: for *any* kv permutation, output is unchanged
        // because softmax-weighted sums are permutation invariant.
        let (store, m, mut rng) = mha(8, 2);
        let tape = Tape::new();
        let bind = LocalBinder::new(&tape, &store);
        let q = tape.leaf(Tensor::randn([1, 2, 8], 1.0, &mut rng));
        let kv_data = Tensor::randn([1, 4, 8], 1.0, &mut rng);
        let kv = tape.leaf(kv_data.clone());
        let y1 = m.forward_kv(&bind, &q, &kv);

        // permute tokens 0..4 -> [2,0,3,1]
        let perm = [2usize, 0, 1, 3];
        let mut permuted = vec![0.0; 32];
        for (i, &pi) in perm.iter().enumerate() {
            permuted[i * 8..(i + 1) * 8].copy_from_slice(&kv_data.data()[pi * 8..(pi + 1) * 8]);
        }
        let kv2 = tape.leaf(Tensor::from_vec(permuted, [1, 4, 8]));
        let y2 = m.forward_kv(&bind, &q, &kv2);
        assert!(y1.value().max_abs_diff(y2.value()) < 1e-5);
    }

    #[test]
    fn attention_gradcheck_small() {
        let mut store = ParamStore::new();
        let mut rng = Rng::new(3);
        let m = MultiHeadAttention::new(&mut store, &mut rng, "a", 4, 2);
        let x0 = Tensor::randn([1, 3, 4], 0.5, &mut rng);
        grad_check(
            &[x0],
            |tape, leaves| {
                let bind = LocalBinder::new(tape, &store);
                let y = m.forward(&bind, &leaves[0]);
                tape.sum_all(&tape.mul(&y, &y))
            },
            3e-2,
        );
    }

    #[test]
    fn long_nontile_sequence_exercises_flash_tiling() {
        // 130 tokens spans three Q/K tiles with a ragged tail; the
        // debug-assert parity path inside forward_kv checks the flash
        // kernel against the naive composition on this shape.
        let (store, m, mut rng) = mha(16, 4);
        let tape = Tape::new();
        let bind = LocalBinder::new(&tape, &store);
        let x = tape.leaf(Tensor::randn([1, 130, 16], 1.0, &mut rng));
        let y = m.forward(&bind, &x);
        assert_eq!(y.dims(), &[1, 130, 16]);
        assert!(y.value().all_finite());
        // Backward through the fused node must produce a finite input grad.
        let loss = tape.sum_all(&tape.mul(&y, &y));
        let grads = tape.backward(&loss);
        assert!(grads.get(&x).unwrap().all_finite());
    }

    #[test]
    fn tp_sharded_geometry_allowed() {
        // 2 of 4 logical heads on this "rank": inner = 8 < dim = 16.
        let mut store = ParamStore::new();
        let mut rng = Rng::new(5);
        let m = MultiHeadAttention::with_head_dim(&mut store, &mut rng, "a", 16, 2, 4);
        assert_eq!(m.inner_dim, 8);
        let tape = Tape::new();
        let bind = LocalBinder::new(&tape, &store);
        let x = tape.leaf(Tensor::randn([1, 3, 16], 1.0, &mut rng));
        let y = m.forward(&bind, &x);
        assert_eq!(y.dims(), &[1, 3, 16]);
    }
}
