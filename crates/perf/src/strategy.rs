//! Parallel-strategy descriptors for the analytical model.

use dchag_model::config::TreeConfig;

/// How channel tokenization + aggregation are organized.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ChannelPlan {
    /// Every TP rank tokenizes and aggregates all channels (TP baseline,
    /// paper Fig. 2 top).
    Replicated,
    /// Distributed tokenization alone (§3.1): tokenize `C/tp` channels,
    /// AllGather the full token tensor, aggregate flat.
    DistTokenOnly,
    /// Full D-CHAG (§3.3): distributed tokenization + per-rank partial
    /// hierarchical aggregation + one-token AllGather + shared final layer.
    DChag(TreeConfig),
}

impl ChannelPlan {
    pub fn name(&self) -> String {
        match self {
            ChannelPlan::Replicated => "TP".to_string(),
            ChannelPlan::DistTokenOnly => "TP+DistTok".to_string(),
            ChannelPlan::DChag(t) => format!("D-CHAG {}", t.name()),
        }
    }
}

/// A full parallel configuration: channel plan × TP × FSDP × DP plus the
/// per-GPU micro-batch.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Strategy {
    pub plan: ChannelPlan,
    pub tp: usize,
    pub fsdp: usize,
    pub dp: usize,
    /// Micro-batch per model instance (each TP group processes one
    /// micro-batch; FSDP/DP groups each process their own).
    pub micro_batch: usize,
}

impl Strategy {
    /// Plain tensor parallelism (the paper's baseline).
    pub fn tp(tp: usize, micro_batch: usize) -> Self {
        Strategy {
            plan: ChannelPlan::Replicated,
            tp,
            fsdp: 1,
            dp: 1,
            micro_batch,
        }
    }

    /// TP with distributed tokenization only (§3.1).
    pub fn dist_token(tp: usize, micro_batch: usize) -> Self {
        Strategy {
            plan: ChannelPlan::DistTokenOnly,
            ..Self::tp(tp, micro_batch)
        }
    }

    /// D-CHAG + TP (§3.3).
    pub fn dchag(tree: TreeConfig, tp: usize, micro_batch: usize) -> Self {
        Strategy {
            plan: ChannelPlan::DChag(tree),
            ..Self::tp(tp, micro_batch)
        }
    }

    /// FSDP-only sharding (tp = 1).
    pub fn fsdp(shards: usize, micro_batch: usize) -> Self {
        Strategy {
            plan: ChannelPlan::Replicated,
            tp: 1,
            fsdp: shards,
            dp: 1,
            micro_batch,
        }
    }

    pub fn with_fsdp(mut self, fsdp: usize) -> Self {
        self.fsdp = fsdp;
        self
    }

    pub fn with_dp(mut self, dp: usize) -> Self {
        self.dp = dp;
        self
    }

    pub fn with_batch(mut self, b: usize) -> Self {
        self.micro_batch = b;
        self
    }

    /// Total GPUs used.
    pub fn gpus(&self) -> usize {
        self.tp * self.fsdp * self.dp
    }

    /// Global batch per step.
    pub fn global_batch(&self) -> usize {
        self.micro_batch * self.fsdp * self.dp
    }

    pub fn name(&self) -> String {
        let mut parts: Vec<String> = Vec::new();
        match self.plan {
            ChannelPlan::Replicated => {}
            ChannelPlan::DistTokenOnly => parts.push("DistTok".to_string()),
            ChannelPlan::DChag(t) => parts.push(format!("D-CHAG {}", t.name())),
        }
        if self.tp > 1 {
            parts.push(format!("TP{}", self.tp));
        }
        if self.fsdp > 1 {
            parts.push(format!("FSDP{}", self.fsdp));
        }
        if self.dp > 1 {
            parts.push(format!("DP{}", self.dp));
        }
        if parts.is_empty() {
            "Single-GPU".to_string()
        } else {
            parts.join("+")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dchag_model::config::UnitKind;

    #[test]
    fn gpu_and_batch_accounting() {
        let s = Strategy::tp(4, 2).with_fsdp(2).with_dp(8);
        assert_eq!(s.gpus(), 64);
        assert_eq!(s.global_batch(), 32);
    }

    #[test]
    fn names_are_descriptive() {
        let s = Strategy::dchag(TreeConfig::tree0(UnitKind::Linear), 8, 1).with_dp(4);
        assert_eq!(s.name(), "D-CHAG Tree0-L+TP8+DP4");
        assert_eq!(Strategy::tp(16, 2).name(), "TP16");
        assert_eq!(Strategy::fsdp(8, 2).name(), "FSDP8");
        assert_eq!(Strategy::tp(1, 2).name(), "Single-GPU");
    }
}
