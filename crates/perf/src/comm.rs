//! α-β collective cost model over the two-level Frontier interconnect.
//!
//! Ring algorithms; a group that fits inside one node runs on Infinity
//! Fabric, anything spanning nodes is bottlenecked by the per-GPU share of
//! Slingshot injection bandwidth.

use crate::hw::MachineSpec;

/// Which fabric a group's ring traverses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Wire {
    Intra,
    Inter,
}

/// Fabric for a group of `g` contiguous ranks (TP-fastest layouts keep
/// groups contiguous, so a group ≤ node size is intra-node).
pub fn wire_for_group(machine: &MachineSpec, group: usize, contiguous: bool) -> Wire {
    if contiguous && group <= machine.gpus_per_node {
        Wire::Intra
    } else {
        Wire::Inter
    }
}

fn bw(machine: &MachineSpec, wire: Wire) -> f64 {
    match wire {
        Wire::Intra => machine.intra_bw,
        Wire::Inter => machine.inter_bw,
    }
}

fn alpha(machine: &MachineSpec, wire: Wire) -> f64 {
    match wire {
        Wire::Intra => machine.alpha_intra,
        Wire::Inter => machine.alpha_inter,
    }
}

/// Ring AllGather where each rank contributes `bytes`: every rank receives
/// `(g−1)·bytes` over `g−1` steps.
pub fn allgather_time(machine: &MachineSpec, bytes: f64, g: usize, wire: Wire) -> f64 {
    if g <= 1 {
        return 0.0;
    }
    let steps = (g - 1) as f64;
    steps * (bytes / bw(machine, wire) + alpha(machine, wire))
}

/// Ring ReduceScatter of a `bytes`-sized buffer per rank.
pub fn reduce_scatter_time(machine: &MachineSpec, bytes: f64, g: usize, wire: Wire) -> f64 {
    if g <= 1 {
        return 0.0;
    }
    let steps = (g - 1) as f64;
    steps * (bytes / g as f64 / bw(machine, wire) + alpha(machine, wire))
}

/// Ring AllReduce = ReduceScatter + AllGather of the chunked buffer.
pub fn allreduce_time(machine: &MachineSpec, bytes: f64, g: usize, wire: Wire) -> f64 {
    if g <= 1 {
        return 0.0;
    }
    let steps = (g - 1) as f64;
    2.0 * steps * (bytes / g as f64 / bw(machine, wire) + alpha(machine, wire))
}

// ----- chunked pipelining / comm-compute overlap -----------------------------

/// Ring AllReduce split into `chunks` pipeline stages: the bandwidth term is
/// unchanged, but every chunk pays its own latency rounds — the cost of
/// making the transfer overlappable.
pub fn chunked_allreduce_time(
    machine: &MachineSpec,
    bytes: f64,
    g: usize,
    wire: Wire,
    chunks: usize,
) -> f64 {
    if g <= 1 {
        return 0.0;
    }
    let steps = (g - 1) as f64;
    let c = chunks.max(1) as f64;
    2.0 * steps * (bytes / g as f64 / bw(machine, wire)) + c * 2.0 * steps * alpha(machine, wire)
}

/// Wall-clock of `compute` overlapped against a `comm`-second collective
/// pipelined over `chunks` stages: the longer leg hides the shorter, plus a
/// one-chunk fill/drain that can never overlap. `chunks == 0` (or 1) models
/// the blocking rendezvous — pure serialization.
pub fn overlapped_time(compute: f64, comm: f64, chunks: usize) -> f64 {
    if chunks <= 1 {
        return compute + comm;
    }
    compute.max(comm) + comm / chunks as f64
}

/// Measured overlap fraction: how much of the communication time was hidden
/// behind compute, from the three wall clocks a bench observes. 0 = fully
/// serialized (pipelined ran no faster than blocking), 1 = communication
/// entirely hidden.
pub fn overlap_fraction(blocking: f64, pipelined: f64, comm: f64) -> f64 {
    if comm <= 0.0 {
        return 0.0;
    }
    ((blocking - pipelined) / comm).clamp(0.0, 1.0)
}

// ----- measured α-β estimation ---------------------------------------------

/// Least-squares fit of the α-β cost model `t = α + bytes/bw` over
/// measured `(bytes, seconds)` samples — typically one sample per
/// completed pipeline chunk, whose `TrafficLog` timestamps already carry
/// exactly this data. Returns `(α seconds, bandwidth bytes/s)`.
///
/// `None` when the samples cannot identify the model: fewer than 4
/// points, no size variation (a schedule of identical chunks has no lever
/// arm on the slope — the tail chunk usually provides it), or a
/// non-positive fitted slope (noise dominating the bandwidth term).
/// Callers keep their cold-start constants in that case. A slightly
/// negative fitted intercept (fast fabrics + timer noise) is clamped to a
/// nanosecond rather than rejected, so the derived chunk sizing stays
/// finite.
pub fn estimate_alpha_beta(samples: &[(f64, f64)]) -> Option<(f64, f64)> {
    const MIN_SAMPLES: usize = 4;
    const ALPHA_FLOOR: f64 = 1e-9;
    let pts: Vec<(f64, f64)> = samples
        .iter()
        .copied()
        .filter(|&(b, t)| b > 0.0 && t >= 0.0 && t.is_finite())
        .collect();
    if pts.len() < MIN_SAMPLES {
        return None;
    }
    let bmin = pts.iter().map(|p| p.0).fold(f64::INFINITY, f64::min);
    let bmax = pts.iter().map(|p| p.0).fold(0.0f64, f64::max);
    if bmax <= bmin {
        return None;
    }
    let n = pts.len() as f64;
    let (mut sb, mut st, mut sbb, mut sbt) = (0.0, 0.0, 0.0, 0.0);
    for &(b, t) in &pts {
        sb += b;
        st += t;
        sbb += b * b;
        sbt += b * t;
    }
    let denom = n * sbb - sb * sb;
    if denom <= 0.0 {
        return None;
    }
    let slope = (n * sbt - sb * st) / denom;
    if slope <= 0.0 || !slope.is_finite() {
        return None;
    }
    let alpha = ((st - slope * sb) / n).max(ALPHA_FLOOR);
    Some((alpha, 1.0 / slope))
}

// ----- adaptive chunk / bucket sizing --------------------------------------

/// Pipeline chunk count that minimizes end-to-end chunked all-reduce time
/// including the one-chunk fill/drain ([`overlapped_time`]'s `comm/chunks`
/// term): `T(c) ≈ B + c·A + B/c` with `B` the bandwidth term and `A` the
/// per-chunk latency rounds, minimized at `c* = √(B/A)`.
///
/// α-bound messages (small `B/A`) collapse to one chunk — pipelining them
/// only multiplies latency; bandwidth-bound messages split into more
/// chunks so compute can hide the transfer. Clamped to `[1, 64]`.
pub fn optimal_chunk_count(machine: &MachineSpec, bytes: f64, g: usize, wire: Wire) -> usize {
    if g <= 1 || bytes <= 0.0 {
        return 1;
    }
    let steps = (g - 1) as f64;
    let bw_term = 2.0 * steps * (bytes / g as f64 / bw(machine, wire));
    let alpha_round = 2.0 * steps * alpha(machine, wire);
    ((bw_term / alpha_round).sqrt().round() as usize).clamp(1, 64)
}

/// α-β-derived pipeline chunk size in f32 elements for a `bytes`-sized
/// all-reduce: the message split into [`optimal_chunk_count`] chunks
/// (α-bound → fewer, larger chunks; bandwidth-bound → more, smaller ones),
/// rounded up to a 1 Ki-element granule so schedules stay cache-friendly
/// and identical across ranks.
pub fn optimal_chunk_elems(machine: &MachineSpec, bytes: f64, g: usize, wire: Wire) -> usize {
    let elems = (bytes / 4.0).ceil().max(1.0) as usize;
    let chunks = optimal_chunk_count(machine, bytes, g, wire);
    let granule = 1024;
    elems.div_ceil(chunks).div_ceil(granule) * granule
}

/// α-β-derived DDP gradient-bucket size in f32 elements for a model of
/// `total_elems` parameters reduced over `g` ranks.
///
/// Two pressures: a bucket's ring all-reduce should be
/// bandwidth-dominated (latency ≤ ~20% of its cost, which sets a floor of
/// `α·g·bw` bytes — α-bound fabrics want *larger* buckets), and enough
/// buckets must exist for the issue pipeline to overlap with backward
/// compute (≥ 8 in flight for a full-size model, which caps the bucket at
/// `total/8`). The floor wins for small models — a bucket smaller than the
/// latency floor spends its time in rendezvous, not on the wire.
pub fn optimal_bucket_elems(machine: &MachineSpec, total_elems: usize, g: usize, wire: Wire) -> usize {
    const LAT_FRACTION: f64 = 0.2;
    const MIN_BUCKETS: usize = 8;
    const MIN_ELEMS: usize = 64 * 1024;
    const MAX_ELEMS: usize = 8 * 1024 * 1024;
    if g <= 1 || total_elems == 0 {
        return MIN_ELEMS;
    }
    // Latency fraction f of T = 2(g−1)(b/(g·bw) + α) gives
    // b ≥ (1−f)/f · α·g·bw bytes.
    let floor_bytes = (1.0 - LAT_FRACTION) / LAT_FRACTION * alpha(machine, wire) * g as f64 * bw(machine, wire);
    let floor_elems = (floor_bytes / 4.0) as usize;
    let overlap_cap = (total_elems / MIN_BUCKETS).max(MIN_ELEMS);
    floor_elems.clamp(MIN_ELEMS, MAX_ELEMS).min(overlap_cap)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> MachineSpec {
        MachineSpec::frontier()
    }

    #[test]
    fn single_rank_collectives_free() {
        assert_eq!(allgather_time(&m(), 1e9, 1, Wire::Intra), 0.0);
        assert_eq!(allreduce_time(&m(), 1e9, 1, Wire::Inter), 0.0);
    }

    #[test]
    fn inter_node_slower_than_intra() {
        let s = 100e6;
        assert!(allreduce_time(&m(), s, 8, Wire::Inter) > allreduce_time(&m(), s, 8, Wire::Intra));
    }

    #[test]
    fn allreduce_twice_reduce_scatter() {
        let s = 64e6;
        let rs = reduce_scatter_time(&m(), s, 8, Wire::Intra);
        let ar = allreduce_time(&m(), s, 8, Wire::Intra);
        assert!((ar - 2.0 * rs).abs() / ar < 1e-9);
    }

    #[test]
    fn wire_selection_by_node_boundary() {
        assert_eq!(wire_for_group(&m(), 8, true), Wire::Intra);
        assert_eq!(wire_for_group(&m(), 16, true), Wire::Inter);
        assert_eq!(wire_for_group(&m(), 2, false), Wire::Inter);
    }

    #[test]
    fn bandwidth_term_dominates_large_messages() {
        let small = allgather_time(&m(), 1e3, 8, Wire::Intra);
        let large = allgather_time(&m(), 1e9, 8, Wire::Intra);
        assert!(large > 100.0 * small);
    }

    #[test]
    fn chunking_adds_only_latency() {
        let s = 1e9;
        let whole = allreduce_time(&m(), s, 8, Wire::Inter);
        let chunked = chunked_allreduce_time(&m(), s, 8, Wire::Inter, 16);
        assert!(chunked > whole, "per-chunk latency rounds cost something");
        // extra cost is exactly the 15 additional alpha rounds
        let extra = 15.0 * 2.0 * 7.0 * m().alpha_inter;
        assert!((chunked - whole - extra).abs() / whole < 1e-9, "{chunked} vs {whole}");
        // bandwidth-bound at 1 GB: latency overhead is a small fraction
        assert!((chunked - whole) / whole < 0.1);
        assert_eq!(chunked_allreduce_time(&m(), s, 8, Wire::Inter, 1), whole);
    }

    #[test]
    fn overlap_hides_the_shorter_leg() {
        // comm-bound: compute disappears behind the pipeline
        let t = overlapped_time(1.0, 4.0, 16);
        assert!(t < 1.0 + 4.0);
        assert!((t - (4.0 + 0.25)).abs() < 1e-12);
        // blocking baseline serializes
        assert_eq!(overlapped_time(1.0, 4.0, 1), 5.0);
        // compute-bound: comm fully hidden except fill/drain
        assert!((overlapped_time(4.0, 1.0, 10) - 4.1).abs() < 1e-12);
    }

    #[test]
    fn overlap_fraction_clamps_and_scales() {
        assert_eq!(overlap_fraction(5.0, 5.0, 2.0), 0.0);
        assert_eq!(overlap_fraction(5.0, 3.0, 2.0), 1.0);
        assert!((overlap_fraction(5.0, 4.0, 2.0) - 0.5).abs() < 1e-12);
        assert_eq!(overlap_fraction(5.0, 1.0, 2.0), 1.0, "clamped");
        assert_eq!(overlap_fraction(5.0, 6.0, 2.0), 0.0, "clamped");
    }

    #[test]
    fn alpha_beta_fit_recovers_exact_model() {
        // Samples generated from t = α + b/bw must be recovered to
        // round-off (the fit is exact for noiseless data).
        let (alpha, bw) = (12e-6, 30e9);
        let samples: Vec<(f64, f64)> = [65536.0, 65536.0, 65536.0, 16384.0, 32768.0]
            .iter()
            .map(|&b| (b, alpha + b / bw))
            .collect();
        let (a, w) = estimate_alpha_beta(&samples).unwrap();
        assert!((a - alpha).abs() / alpha < 1e-6, "α {a} vs {alpha}");
        assert!((w - bw).abs() / bw < 1e-6, "bw {w} vs {bw}");
    }

    #[test]
    fn alpha_beta_fit_rejects_unidentifiable_samples() {
        // Too few points.
        assert!(estimate_alpha_beta(&[(1e4, 1e-4), (2e4, 2e-4)]).is_none());
        // No size variation: slope has no lever arm.
        let same: Vec<(f64, f64)> = (0..8).map(|i| (4096.0, 1e-5 + i as f64 * 1e-8)).collect();
        assert!(estimate_alpha_beta(&same).is_none());
        // Negative slope (bigger chunks finishing faster = noise).
        let bad: Vec<(f64, f64)> =
            [(1e4, 4e-4), (2e4, 3e-4), (3e4, 2e-4), (4e4, 1e-4)].to_vec();
        assert!(estimate_alpha_beta(&bad).is_none());
        // Degenerate byte counts are filtered, not fit.
        let zeros: Vec<(f64, f64)> = (0..8).map(|_| (0.0, 1e-5)).collect();
        assert!(estimate_alpha_beta(&zeros).is_none());
    }

    #[test]
    fn alpha_beta_fit_clamps_negative_intercept() {
        // Slight timer skew can pull the intercept below zero; the fit
        // clamps α instead of failing so sizing stays derivable.
        let bw = 10e9;
        let samples: Vec<(f64, f64)> = [1e4f64, 2e4, 3e4, 4e4]
            .iter()
            .map(|&b| (b, (b / bw - 1e-7).max(0.0)))
            .collect();
        let (a, w) = estimate_alpha_beta(&samples).unwrap();
        assert!(a > 0.0 && a <= 1e-6, "α clamped small, got {a}");
        assert!(w > 0.0);
    }

    #[test]
    fn measured_machine_drives_sizing() {
        // A fabric measured 100× slower than Frontier wants smaller
        // pipeline chunks for the same payload (bandwidth term shrinks
        // relative to α… actually α measured huge ⇒ fewer chunks). Pin
        // the directional behaviors.
        let slow_alpha = MachineSpec::measured(1e-3, 35e9);
        let frontier = m();
        let bytes = 4.0 * 1024.0 * 1024.0;
        assert!(
            optimal_chunk_count(&slow_alpha, bytes, 4, Wire::Intra)
                <= optimal_chunk_count(&frontier, bytes, 4, Wire::Intra),
            "α-bound measured fabric pipelines less"
        );
        let fat_pipe = MachineSpec::measured(8e-6, 350e9);
        assert!(
            optimal_bucket_elems(&fat_pipe, 30_000_000, 4, Wire::Intra)
                >= optimal_bucket_elems(&frontier, 30_000_000, 4, Wire::Intra),
            "higher measured bandwidth raises the latency-floor bucket"
        );
        // Both wires carry the measured numbers, so wire attribution
        // cannot skew a measured-machine derivation.
        assert_eq!(slow_alpha.alpha_intra, slow_alpha.alpha_inter);
        assert_eq!(slow_alpha.intra_bw, slow_alpha.inter_bw);
    }

    #[test]
    fn chunk_count_tracks_alpha_beta_regimes() {
        // Degenerate groups never pipeline.
        assert_eq!(optimal_chunk_count(&m(), 1e9, 1, Wire::Intra), 1);
        // α-bound tiny message: one chunk (pipelining only multiplies α).
        assert_eq!(optimal_chunk_count(&m(), 4.0 * 256.0, 8, Wire::Inter), 1);
        // Bandwidth-bound: chunk count grows with the message…
        let small = optimal_chunk_count(&m(), 1e6, 8, Wire::Intra);
        let large = optimal_chunk_count(&m(), 64e6, 8, Wire::Intra);
        assert!(large > small, "{large} vs {small}");
        // …and is capped.
        assert!(optimal_chunk_count(&m(), 1e12, 8, Wire::Intra) <= 64);
    }

    #[test]
    fn chunk_elems_larger_when_alpha_bound() {
        // Same message: the high-α inter-node wire wants larger chunks
        // than the low-α intra-node wire.
        let bytes = 16e6;
        let intra = optimal_chunk_elems(&m(), bytes, 8, Wire::Intra);
        let inter = optimal_chunk_elems(&m(), bytes, 8, Wire::Inter);
        assert!(inter >= intra, "inter {inter} vs intra {intra}");
        // Granular and covering: chunks × size ≥ message.
        let count = optimal_chunk_count(&m(), bytes, 8, Wire::Intra);
        assert!(intra.is_multiple_of(1024) && intra * count >= (bytes / 4.0) as usize);
    }

    #[test]
    fn bucket_elems_floor_cap_and_fallback() {
        let total = 30_000_000; // ~30M-param model
        let b = optimal_bucket_elems(&m(), total, 8, Wire::Intra);
        assert!((64 * 1024..=8 * 1024 * 1024).contains(&b));
        // Enough buckets in flight to overlap.
        assert!(total / b >= 3, "bucket {b} leaves too few buckets");
        // Small models fall to the overlap cap, never below the minimum.
        let small = optimal_bucket_elems(&m(), 200_000, 8, Wire::Intra);
        assert_eq!(small, 64 * 1024);
        // Degenerate inputs: fixed fallback.
        assert_eq!(optimal_bucket_elems(&m(), 0, 8, Wire::Intra), 64 * 1024);
        assert_eq!(optimal_bucket_elems(&m(), total, 1, Wire::Intra), 64 * 1024);
        // Higher-α wire never wants smaller buckets.
        let inter = optimal_bucket_elems(&m(), 1_000_000_000, 8, Wire::Inter);
        let intra = optimal_bucket_elems(&m(), 1_000_000_000, 8, Wire::Intra);
        assert!(inter >= intra);
    }
}
