//! α-β collective cost model over the two-level Frontier interconnect.
//!
//! Ring algorithms; a group that fits inside one node runs on Infinity
//! Fabric, anything spanning nodes is bottlenecked by the per-GPU share of
//! Slingshot injection bandwidth.

use crate::hw::MachineSpec;

/// Which fabric a group's ring traverses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Wire {
    Intra,
    Inter,
}

/// Fabric for a group of `g` contiguous ranks (TP-fastest layouts keep
/// groups contiguous, so a group ≤ node size is intra-node).
pub fn wire_for_group(machine: &MachineSpec, group: usize, contiguous: bool) -> Wire {
    if contiguous && group <= machine.gpus_per_node {
        Wire::Intra
    } else {
        Wire::Inter
    }
}

fn bw(machine: &MachineSpec, wire: Wire) -> f64 {
    match wire {
        Wire::Intra => machine.intra_bw,
        Wire::Inter => machine.inter_bw,
    }
}

fn alpha(machine: &MachineSpec, wire: Wire) -> f64 {
    match wire {
        Wire::Intra => machine.alpha_intra,
        Wire::Inter => machine.alpha_inter,
    }
}

/// Ring AllGather where each rank contributes `bytes`: every rank receives
/// `(g−1)·bytes` over `g−1` steps.
pub fn allgather_time(machine: &MachineSpec, bytes: f64, g: usize, wire: Wire) -> f64 {
    if g <= 1 {
        return 0.0;
    }
    let steps = (g - 1) as f64;
    steps * (bytes / bw(machine, wire) + alpha(machine, wire))
}

/// Ring ReduceScatter of a `bytes`-sized buffer per rank.
pub fn reduce_scatter_time(machine: &MachineSpec, bytes: f64, g: usize, wire: Wire) -> f64 {
    if g <= 1 {
        return 0.0;
    }
    let steps = (g - 1) as f64;
    steps * (bytes / g as f64 / bw(machine, wire) + alpha(machine, wire))
}

/// Ring AllReduce = ReduceScatter + AllGather of the chunked buffer.
pub fn allreduce_time(machine: &MachineSpec, bytes: f64, g: usize, wire: Wire) -> f64 {
    if g <= 1 {
        return 0.0;
    }
    let steps = (g - 1) as f64;
    2.0 * steps * (bytes / g as f64 / bw(machine, wire) + alpha(machine, wire))
}

// ----- chunked pipelining / comm-compute overlap -----------------------------

/// Ring AllReduce split into `chunks` pipeline stages: the bandwidth term is
/// unchanged, but every chunk pays its own latency rounds — the cost of
/// making the transfer overlappable.
pub fn chunked_allreduce_time(
    machine: &MachineSpec,
    bytes: f64,
    g: usize,
    wire: Wire,
    chunks: usize,
) -> f64 {
    if g <= 1 {
        return 0.0;
    }
    let steps = (g - 1) as f64;
    let c = chunks.max(1) as f64;
    2.0 * steps * (bytes / g as f64 / bw(machine, wire)) + c * 2.0 * steps * alpha(machine, wire)
}

/// Wall-clock of `compute` overlapped against a `comm`-second collective
/// pipelined over `chunks` stages: the longer leg hides the shorter, plus a
/// one-chunk fill/drain that can never overlap. `chunks == 0` (or 1) models
/// the blocking rendezvous — pure serialization.
pub fn overlapped_time(compute: f64, comm: f64, chunks: usize) -> f64 {
    if chunks <= 1 {
        return compute + comm;
    }
    compute.max(comm) + comm / chunks as f64
}

/// Measured overlap fraction: how much of the communication time was hidden
/// behind compute, from the three wall clocks a bench observes. 0 = fully
/// serialized (pipelined ran no faster than blocking), 1 = communication
/// entirely hidden.
pub fn overlap_fraction(blocking: f64, pipelined: f64, comm: f64) -> f64 {
    if comm <= 0.0 {
        return 0.0;
    }
    ((blocking - pipelined) / comm).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> MachineSpec {
        MachineSpec::frontier()
    }

    #[test]
    fn single_rank_collectives_free() {
        assert_eq!(allgather_time(&m(), 1e9, 1, Wire::Intra), 0.0);
        assert_eq!(allreduce_time(&m(), 1e9, 1, Wire::Inter), 0.0);
    }

    #[test]
    fn inter_node_slower_than_intra() {
        let s = 100e6;
        assert!(allreduce_time(&m(), s, 8, Wire::Inter) > allreduce_time(&m(), s, 8, Wire::Intra));
    }

    #[test]
    fn allreduce_twice_reduce_scatter() {
        let s = 64e6;
        let rs = reduce_scatter_time(&m(), s, 8, Wire::Intra);
        let ar = allreduce_time(&m(), s, 8, Wire::Intra);
        assert!((ar - 2.0 * rs).abs() / ar < 1e-9);
    }

    #[test]
    fn wire_selection_by_node_boundary() {
        assert_eq!(wire_for_group(&m(), 8, true), Wire::Intra);
        assert_eq!(wire_for_group(&m(), 16, true), Wire::Inter);
        assert_eq!(wire_for_group(&m(), 2, false), Wire::Inter);
    }

    #[test]
    fn bandwidth_term_dominates_large_messages() {
        let small = allgather_time(&m(), 1e3, 8, Wire::Intra);
        let large = allgather_time(&m(), 1e9, 8, Wire::Intra);
        assert!(large > 100.0 * small);
    }

    #[test]
    fn chunking_adds_only_latency() {
        let s = 1e9;
        let whole = allreduce_time(&m(), s, 8, Wire::Inter);
        let chunked = chunked_allreduce_time(&m(), s, 8, Wire::Inter, 16);
        assert!(chunked > whole, "per-chunk latency rounds cost something");
        // extra cost is exactly the 15 additional alpha rounds
        let extra = 15.0 * 2.0 * 7.0 * m().alpha_inter;
        assert!((chunked - whole - extra).abs() / whole < 1e-9, "{chunked} vs {whole}");
        // bandwidth-bound at 1 GB: latency overhead is a small fraction
        assert!((chunked - whole) / whole < 0.1);
        assert_eq!(chunked_allreduce_time(&m(), s, 8, Wire::Inter, 1), whole);
    }

    #[test]
    fn overlap_hides_the_shorter_leg() {
        // comm-bound: compute disappears behind the pipeline
        let t = overlapped_time(1.0, 4.0, 16);
        assert!(t < 1.0 + 4.0);
        assert!((t - (4.0 + 0.25)).abs() < 1e-12);
        // blocking baseline serializes
        assert_eq!(overlapped_time(1.0, 4.0, 1), 5.0);
        // compute-bound: comm fully hidden except fill/drain
        assert!((overlapped_time(4.0, 1.0, 10) - 4.1).abs() < 1e-12);
    }

    #[test]
    fn overlap_fraction_clamps_and_scales() {
        assert_eq!(overlap_fraction(5.0, 5.0, 2.0), 0.0);
        assert_eq!(overlap_fraction(5.0, 3.0, 2.0), 1.0);
        assert!((overlap_fraction(5.0, 4.0, 2.0) - 0.5).abs() < 1e-12);
        assert_eq!(overlap_fraction(5.0, 1.0, 2.0), 1.0, "clamped");
        assert_eq!(overlap_fraction(5.0, 6.0, 2.0), 0.0, "clamped");
    }
}
