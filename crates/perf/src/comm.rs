//! α-β collective cost model over the two-level Frontier interconnect.
//!
//! Ring algorithms; a group that fits inside one node runs on Infinity
//! Fabric, anything spanning nodes is bottlenecked by the per-GPU share of
//! Slingshot injection bandwidth.

use crate::hw::MachineSpec;

/// Which fabric a group's ring traverses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Wire {
    Intra,
    Inter,
}

/// Fabric for a group of `g` contiguous ranks (TP-fastest layouts keep
/// groups contiguous, so a group ≤ node size is intra-node).
pub fn wire_for_group(machine: &MachineSpec, group: usize, contiguous: bool) -> Wire {
    if contiguous && group <= machine.gpus_per_node {
        Wire::Intra
    } else {
        Wire::Inter
    }
}

fn bw(machine: &MachineSpec, wire: Wire) -> f64 {
    match wire {
        Wire::Intra => machine.intra_bw,
        Wire::Inter => machine.inter_bw,
    }
}

fn alpha(machine: &MachineSpec, wire: Wire) -> f64 {
    match wire {
        Wire::Intra => machine.alpha_intra,
        Wire::Inter => machine.alpha_inter,
    }
}

/// Ring AllGather where each rank contributes `bytes`: every rank receives
/// `(g−1)·bytes` over `g−1` steps.
pub fn allgather_time(machine: &MachineSpec, bytes: f64, g: usize, wire: Wire) -> f64 {
    if g <= 1 {
        return 0.0;
    }
    let steps = (g - 1) as f64;
    steps * (bytes / bw(machine, wire) + alpha(machine, wire))
}

/// Ring ReduceScatter of a `bytes`-sized buffer per rank.
pub fn reduce_scatter_time(machine: &MachineSpec, bytes: f64, g: usize, wire: Wire) -> f64 {
    if g <= 1 {
        return 0.0;
    }
    let steps = (g - 1) as f64;
    steps * (bytes / g as f64 / bw(machine, wire) + alpha(machine, wire))
}

/// Ring AllReduce = ReduceScatter + AllGather of the chunked buffer.
pub fn allreduce_time(machine: &MachineSpec, bytes: f64, g: usize, wire: Wire) -> f64 {
    if g <= 1 {
        return 0.0;
    }
    let steps = (g - 1) as f64;
    2.0 * steps * (bytes / g as f64 / bw(machine, wire) + alpha(machine, wire))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> MachineSpec {
        MachineSpec::frontier()
    }

    #[test]
    fn single_rank_collectives_free() {
        assert_eq!(allgather_time(&m(), 1e9, 1, Wire::Intra), 0.0);
        assert_eq!(allreduce_time(&m(), 1e9, 1, Wire::Inter), 0.0);
    }

    #[test]
    fn inter_node_slower_than_intra() {
        let s = 100e6;
        assert!(allreduce_time(&m(), s, 8, Wire::Inter) > allreduce_time(&m(), s, 8, Wire::Intra));
    }

    #[test]
    fn allreduce_twice_reduce_scatter() {
        let s = 64e6;
        let rs = reduce_scatter_time(&m(), s, 8, Wire::Intra);
        let ar = allreduce_time(&m(), s, 8, Wire::Intra);
        assert!((ar - 2.0 * rs).abs() / ar < 1e-9);
    }

    #[test]
    fn wire_selection_by_node_boundary() {
        assert_eq!(wire_for_group(&m(), 8, true), Wire::Intra);
        assert_eq!(wire_for_group(&m(), 16, true), Wire::Inter);
        assert_eq!(wire_for_group(&m(), 2, false), Wire::Inter);
    }

    #[test]
    fn bandwidth_term_dominates_large_messages() {
        let small = allgather_time(&m(), 1e3, 8, Wire::Intra);
        let large = allgather_time(&m(), 1e9, 8, Wire::Intra);
        assert!(large > 100.0 * small);
    }
}
