//! Hardware description: the Frontier node (paper §4.1).
//!
//! Each Frontier node has four MI250X accelerators = eight GCDs; the system
//! reports every GCD as an independent GPU with 64 GB of HBM. GCDs within a
//! node are connected by Infinity Fabric (50 GB/s links); nodes connect via
//! four Slingshot-11 NICs (100 GB/s total per node).

/// One GPU (= one MI250X GCD in the paper's terminology).
#[derive(Clone, Copy, Debug)]
pub struct GpuSpec {
    /// HBM capacity in bytes.
    pub hbm_bytes: f64,
    /// Peak matrix throughput, bf16 FLOP/s.
    pub peak_flops: f64,
    /// Sustained fraction of peak achievable by transformer kernels.
    pub efficiency: f64,
    /// Sustained fraction of peak for per-channel tokenization: many skinny
    /// GEMMs (K = p² = 256) that cannot saturate the MFMA pipes.
    pub tok_efficiency: f64,
}

/// A homogeneous multi-node machine.
#[derive(Clone, Copy, Debug)]
pub struct MachineSpec {
    pub gpu: GpuSpec,
    pub gpus_per_node: usize,
    /// Per-GPU intra-node bandwidth (Infinity Fabric), bytes/s.
    pub intra_bw: f64,
    /// Per-GPU share of the node's injection bandwidth (Slingshot), bytes/s.
    pub inter_bw: f64,
    /// Collective launch latency, seconds.
    pub alpha_intra: f64,
    pub alpha_inter: f64,
    /// Fraction of HBM usable by the application (allocator reserve,
    /// runtime buffers).
    pub usable_fraction: f64,
}

impl MachineSpec {
    /// Frontier: MI250X GCD = 64 GB HBM, 191.5 TFLOP/s bf16 peak;
    /// 50 GB/s Infinity Fabric per GCD pair; 100 GB/s Slingshot per node
    /// shared by 8 GCDs.
    pub fn frontier() -> Self {
        MachineSpec {
            gpu: GpuSpec {
                hbm_bytes: 64e9,
                peak_flops: 191.5e12,
                efficiency: 0.32,
                tok_efficiency: 0.10,
            },
            gpus_per_node: 8,
            // achieved ring bus-bandwidth (RCCL) inside a node; the 50 GB/s
            // figure is the per-link peak, collectives sustain less.
            intra_bw: 35e9,
            inter_bw: 100e9 / 8.0,
            alpha_intra: 8e-6,
            alpha_inter: 25e-6,
            usable_fraction: 0.95,
        }
    }

    /// A machine whose interconnect parameters were *measured* on the
    /// running host (fit from `TrafficLog` chunk timestamps via
    /// `dchag_perf::comm::estimate_alpha_beta`) instead of assumed from
    /// the Frontier spec sheet. Both wires carry the measured values —
    /// a single-host thread fabric has one topology — so wire attribution
    /// can never skew a derivation; compute/memory fields keep the
    /// Frontier reference numbers, which the comm-sizing paths do not
    /// read.
    pub fn measured(alpha_s: f64, bw_bytes_per_s: f64) -> Self {
        let mut m = MachineSpec::frontier();
        m.intra_bw = bw_bytes_per_s;
        m.inter_bw = bw_bytes_per_s;
        m.alpha_intra = alpha_s;
        m.alpha_inter = alpha_s;
        m
    }

    /// Usable HBM per GPU in bytes.
    pub fn mem_cap(&self) -> f64 {
        self.gpu.hbm_bytes * self.usable_fraction
    }

    /// Sustained per-GPU FLOP/s for dense transformer kernels.
    pub fn sustained_flops(&self) -> f64 {
        self.gpu.peak_flops * self.gpu.efficiency
    }

    /// Sustained per-GPU FLOP/s for the tokenization kernels.
    pub fn sustained_tok_flops(&self) -> f64 {
        self.gpu.peak_flops * self.gpu.tok_efficiency
    }

    /// Number of nodes needed for `gpus` GPUs.
    pub fn nodes_for(&self, gpus: usize) -> usize {
        gpus.div_ceil(self.gpus_per_node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontier_node_has_eight_gcds() {
        let m = MachineSpec::frontier();
        assert_eq!(m.gpus_per_node, 8);
        assert_eq!(m.nodes_for(1024), 128);
        assert_eq!(m.nodes_for(9), 2);
    }

    #[test]
    fn memory_cap_below_hbm() {
        let m = MachineSpec::frontier();
        assert!(m.mem_cap() < m.gpu.hbm_bytes);
        assert!(m.mem_cap() > 0.9 * m.gpu.hbm_bytes);
    }

    #[test]
    fn interconnect_hierarchy() {
        let m = MachineSpec::frontier();
        assert!(m.intra_bw > m.inter_bw, "IF must beat Slingshot share");
        assert!(m.alpha_inter > m.alpha_intra);
    }
}
