//! Plain-text table rendering for the experiment harness.

/// A simple aligned table with a title, headers, and rows.
#[derive(Clone, Debug, Default)]
pub struct Table {
    pub title: String,
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
    /// Free-form footnotes (assumptions, paper comparison).
    pub notes: Vec<String>,
}

impl Table {
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity");
        self.rows.push(cells);
        self
    }

    pub fn note(&mut self, s: impl Into<String>) -> &mut Self {
        self.notes.push(s.into());
        self
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&line(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row, &widths));
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("note: {n}\n"));
        }
        out
    }
}

/// Format bytes as GB with one decimal.
pub fn gb(bytes: f64) -> String {
    format!("{:.1}", bytes / 1e9)
}

/// Format a ratio as a percentage gain string, e.g. "+62%".
pub fn pct_gain(gain: f64) -> String {
    format!("{}{:.0}%", if gain >= 0.0 { "+" } else { "" }, gain * 100.0)
}

/// Format a fraction as percent.
pub fn pct(frac: f64) -> String {
    format!("{:.0}%", frac * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["short".into(), "1".into()]);
        t.row(vec!["a-much-longer-name".into(), "22".into()]);
        t.note("hello");
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("a-much-longer-name"));
        assert!(s.contains("note: hello"));
        // header aligned to widest row
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[1].starts_with("name"));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(gb(64e9), "64.0");
        assert_eq!(pct_gain(0.62), "+62%");
        assert_eq!(pct_gain(-0.05), "-5%");
        assert_eq!(pct(0.55), "55%");
    }
}
