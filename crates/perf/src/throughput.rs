//! Step-time and sustained-throughput estimation.
//!
//! `step_time = compute + TP comm + (1−overlap)·FSDP comm + (1−overlap)·DP
//! comm`. TP collectives sit on the critical path (activations);
//! FSDP/DP collectives overlap partially with compute, DP best of all
//! (paper §2.2: "DP scales efficiently because computation grows with
//! communication").

use dchag_model::config::ModelConfig;

use crate::comm::{allgather_time, allreduce_time, reduce_scatter_time, wire_for_group, Wire};
use crate::flops::flops_per_gpu;
use crate::hw::MachineSpec;
use crate::memory::MemoryModel;
use crate::strategy::{ChannelPlan, Strategy};

/// Overlap fractions (how much of the collective hides under compute).
const FSDP_OVERLAP: f64 = 0.5;
const DP_OVERLAP: f64 = 0.7;

/// Estimated per-step timing, per GPU.
#[derive(Clone, Copy, Debug)]
pub struct StepEstimate {
    pub compute_s: f64,
    pub tp_comm_s: f64,
    pub fsdp_comm_s: f64,
    pub dp_comm_s: f64,
    /// Useful model FLOPs executed by this GPU per step.
    pub flops_per_gpu: f64,
}

impl StepEstimate {
    pub fn step_time(&self) -> f64 {
        self.compute_s
            + self.tp_comm_s
            + (1.0 - FSDP_OVERLAP) * self.fsdp_comm_s
            + (1.0 - DP_OVERLAP) * self.dp_comm_s
    }

    /// Sustained TFLOP/s per GPU.
    pub fn tflops_per_gpu(&self) -> f64 {
        self.flops_per_gpu / self.step_time() / 1e12
    }
}

/// The throughput model.
#[derive(Clone, Copy, Debug)]
pub struct ThroughputModel {
    pub machine: MachineSpec,
}

impl ThroughputModel {
    pub fn frontier() -> Self {
        ThroughputModel {
            machine: MachineSpec::frontier(),
        }
    }

    /// Canonical model FLOPs per training sample: the single-device flat
    /// architecture, computed once. Sustained-throughput comparisons across
    /// strategies use `samples/sec × canonical` (MFU-style accounting), so
    /// a method cannot look better by *executing* redundant work, nor worse
    /// by eliminating it.
    pub fn canonical_flops_per_sample(&self, cfg: &ModelConfig) -> f64 {
        flops_per_gpu(cfg, &Strategy::tp(1, 1)).total()
    }

    /// Total (non-embedding) parameters per model replica, for gradient
    /// collectives.
    fn replica_params(&self, cfg: &ModelConfig) -> f64 {
        (cfg.transformer_params() + cfg.tokenizer_params()) as f64
    }

    pub fn estimate(&self, cfg: &ModelConfig, strat: &Strategy) -> StepEstimate {
        let m = &self.machine;
        let fl = flops_per_gpu(cfg, strat);
        // Tokenization runs at its own (lower) efficiency: skinny per-channel
        // GEMMs. This is what makes the baseline's *replicated* tokenization
        // so expensive in wall-clock, not just in memory.
        let compute_s =
            fl.tok / m.sustained_tok_flops() + (fl.agg + fl.vit) / m.sustained_flops();
        // Useful (model) FLOPs: the TP baseline re-tokenizes every channel
        // on every rank; that redundant work burns time but is not model
        // throughput. D-CHAG and distributed tokenization have no redundant
        // component.
        let useful = match strat.plan {
            ChannelPlan::Replicated => {
                fl.total() - fl.tok * (1.0 - 1.0 / strat.tp as f64)
            }
            _ => fl.total(),
        };

        let d = cfg.embed_dim as f64;
        let p = cfg.num_patches() as f64;
        let b = strat.micro_batch as f64;
        let act_bytes = 2.0; // bf16

        // --- TP collectives on the activation critical path -------------
        let tp_wire = wire_for_group(m, strat.tp, true);
        let mut tp_comm_s = 0.0;
        if strat.tp > 1 {
            // per ViT block: 2 forward AllReduce (g ops) + 2 backward (f ops)
            let msg = b * p * d * act_bytes;
            tp_comm_s += cfg.depth as f64 * 4.0 * allreduce_time(m, msg, strat.tp, tp_wire);
            // aggregation-module collectives
            match strat.plan {
                ChannelPlan::Replicated => {
                    // flat CA fwd+bwd AllReduce over [B,C,P,D]
                    let msg = b * cfg.channels as f64 * p * d * act_bytes;
                    tp_comm_s += 2.0 * allreduce_time(m, msg, strat.tp, tp_wire);
                }
                ChannelPlan::DistTokenOnly => {
                    // gather of full channel tokens + flat CA AllReduces
                    let contrib = b * (cfg.channels / strat.tp) as f64 * p * d * act_bytes;
                    tp_comm_s += allgather_time(m, contrib, strat.tp, tp_wire);
                    let msg = b * cfg.channels as f64 * p * d * act_bytes;
                    tp_comm_s += 2.0 * allreduce_time(m, msg, strat.tp, tp_wire);
                }
                ChannelPlan::DChag(_) => {
                    // one token per rank gather + final CA AllReduces over
                    // [B, tp, P, D] — both tiny
                    let contrib = b * p * d * act_bytes;
                    tp_comm_s += allgather_time(m, contrib, strat.tp, tp_wire);
                    let msg = b * strat.tp as f64 * p * d * act_bytes;
                    tp_comm_s += 2.0 * allreduce_time(m, msg, strat.tp, tp_wire);
                }
            }
        }

        // --- FSDP: gather params (fwd+bwd) + reduce-scatter grads --------
        let mut fsdp_comm_s = 0.0;
        if strat.fsdp > 1 {
            // FSDP groups stride across TP groups: contiguous only if tp*fsdp
            // fits a node.
            let contiguous = strat.tp * strat.fsdp <= m.gpus_per_node;
            let wire = if contiguous { Wire::Intra } else { Wire::Inter };
            let params_local = self.replica_params(cfg) / strat.tp as f64;
            let shard = params_local * 2.0 / strat.fsdp as f64; // bf16 shard
            // 2 gathers (fwd + bwd re-gather) + 1 reduce-scatter
            fsdp_comm_s += 2.0 * allgather_time(m, shard, strat.fsdp, wire);
            fsdp_comm_s += reduce_scatter_time(m, params_local * 2.0, strat.fsdp, wire);
        }

        // --- DP: one gradient AllReduce per step -------------------------
        let mut dp_comm_s = 0.0;
        if strat.dp > 1 {
            let grads = self.replica_params(cfg) * 2.0 / (strat.tp * strat.fsdp) as f64;
            // DP replicas stride across TP×FSDP blocks, so their rings
            // cross node boundaries in every layout we model.
            dp_comm_s += allreduce_time(m, grads, strat.dp, Wire::Inter);
        }

        StepEstimate {
            compute_s,
            tp_comm_s,
            fsdp_comm_s,
            dp_comm_s,
            flops_per_gpu: useful,
        }
    }

    /// Training samples per second across the whole strategy (every
    /// FSDP × DP group processes its own micro-batch per step).
    pub fn samples_per_sec(&self, cfg: &ModelConfig, strat: &Strategy) -> f64 {
        let est = self.estimate(cfg, strat);
        strat.global_batch() as f64 / est.step_time()
    }

    /// Total sustained TFLOP/s: samples/sec × canonical model FLOPs.
    pub fn tflops_total(&self, cfg: &ModelConfig, strat: &Strategy) -> f64 {
        self.samples_per_sec(cfg, strat) * self.canonical_flops_per_sample(cfg) / 1e12
    }

    /// Sustained TFLOP/s per *node* (the paper's Fig. 15 metric).
    pub fn tflops_per_node(&self, cfg: &ModelConfig, strat: &Strategy) -> f64 {
        self.tflops_total(cfg, strat) / self.machine.nodes_for(strat.gpus()) as f64
    }

    /// Fill HBM: return the strategy with the largest micro-batch that fits.
    pub fn at_max_batch(&self, cfg: &ModelConfig, strat: &Strategy) -> Option<Strategy> {
        let mem = MemoryModel {
            machine: self.machine,
        };
        let b = mem.max_micro_batch(cfg, strat);
        (b > 0).then(|| strat.with_batch(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dchag_model::config::{TreeConfig, UnitKind};

    #[test]
    fn step_time_positive_and_composable() {
        let t = ThroughputModel::frontier();
        let cfg = ModelConfig::p7b().with_channels(512);
        let est = t.estimate(&cfg, &Strategy::tp(16, 1));
        assert!(est.compute_s > 0.0);
        assert!(est.tp_comm_s > 0.0);
        assert!(est.step_time() >= est.compute_s);
    }

    #[test]
    fn intra_node_tp_beats_cross_node_tp() {
        // Same model, same math: TP8 (one node) vs TP16 (two nodes) per-GPU
        // efficiency.
        let t = ThroughputModel::frontier();
        let cfg = ModelConfig::p7b().with_channels(256);
        let tp8 = t.estimate(&cfg, &Strategy::tp(8, 2));
        let tp16 = t.estimate(&cfg, &Strategy::tp(16, 2));
        assert!(
            tp8.tflops_per_gpu() > tp16.tflops_per_gpu(),
            "{} vs {}",
            tp8.tflops_per_gpu(),
            tp16.tflops_per_gpu()
        );
    }

    #[test]
    fn dchag_gather_cheaper_than_dist_token_gather() {
        let t = ThroughputModel::frontier();
        let cfg = ModelConfig::p1_7b().with_channels(1024);
        let dt = t.estimate(&cfg, &Strategy::dist_token(8, 1));
        let dc = t.estimate(
            &cfg,
            &Strategy::dchag(TreeConfig::tree0(UnitKind::Linear), 8, 1),
        );
        assert!(dc.tp_comm_s < dt.tp_comm_s);
    }

    #[test]
    fn dp_overlaps_better_than_tp() {
        // Adding DP grows aggregate throughput almost linearly.
        let t = ThroughputModel::frontier();
        let cfg = ModelConfig::p7b().with_channels(500);
        let one = t.tflops_total(
            &cfg,
            &Strategy::dchag(TreeConfig::tree0(UnitKind::Linear), 8, 8),
        );
        let eight = t.tflops_total(
            &cfg,
            &Strategy::dchag(TreeConfig::tree0(UnitKind::Linear), 8, 8).with_dp(8),
        );
        assert!(eight > 6.0 * one, "DP scaling {} -> {}", one, eight);
    }

    #[test]
    fn max_batch_strategy_fits() {
        let t = ThroughputModel::frontier();
        let mem = MemoryModel::frontier();
        let cfg = ModelConfig::p7b().with_channels(500);
        let s = Strategy::dchag(TreeConfig::tree0(UnitKind::Linear), 8, 1);
        let filled = t.at_max_batch(&cfg, &s).expect("fits");
        assert!(filled.micro_batch >= 1);
        assert!(mem.fits(&cfg, &filled));
    }
}
