//! # dchag-perf
//!
//! Calibrated analytical performance model of D-CHAG on a Frontier-like
//! machine. The paper's at-scale results (memory footprints, OOM
//! boundaries, TFLOP/s) are closed-form functions of the model
//! configuration, the parallel strategy, and the node topology; this crate
//! evaluates those functions so the evaluation figures can be regenerated
//! without 1,024 MI250X GCDs.
//!
//! Calibration anchors (asserted in this crate's tests and the integration
//! suite) come from the paper's stated fit/no-fit boundaries; the *shapes*
//! of every figure — who wins, by what factor, where the crossovers sit —
//! are derived from the model, not transcribed.

pub mod comm;
pub mod flops;
pub mod hw;
pub mod memory;
pub mod report;
pub mod strategy;
pub mod throughput;

pub use comm::{allgather_time, allreduce_time, reduce_scatter_time, Wire};
pub use flops::{flops_per_gpu, FlopsBreakdown};
pub use hw::{GpuSpec, MachineSpec};
pub use memory::{Component, MemBreakdown, MemoryModel};
pub use report::{gb, pct, pct_gain, Table};
pub use strategy::{ChannelPlan, Strategy};
pub use throughput::{StepEstimate, ThroughputModel};
