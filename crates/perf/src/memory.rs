//! Closed-form per-GPU memory model.
//!
//! Accounting conventions (mixed-precision bf16 training, as on Frontier):
//! * per parameter: 2 B working copy (bf16) + 2 B gradient + 8 B Adam
//!   moments (fp32 m, v) = 12 B; FSDP shards everything except the working
//!   copy, i.e. `2 + 10/fsdp` B/param — which reproduces the paper's
//!   observation that "at some point the entire model parameters must fit
//!   into the memory of a single GPU".
//! * activations: bf16 (2 B), saved for backward. The ViT self-attention is
//!   FlashAttention-2 (paper §4.1), so it stores no `P²` score matrix; the
//!   cross-channel aggregation is *not* flash (uneven input/output arity,
//!   paper §3.2) and stores its `C²` scores — the quadratic term D-CHAG
//!   attacks.
//!
//! Components follow the paper's three-way split: tokenization, channel
//! aggregation, transformer (ViT) blocks.

use dchag_model::config::{ModelConfig, TreeConfig, UnitKind};

use crate::hw::MachineSpec;
use crate::strategy::{ChannelPlan, Strategy};

/// bf16 bytes per element.
const ACT: f64 = 2.0;
/// AllGather buffers count the gathered output plus half again for the
/// collective's staging workspace.
const GATHER_STAGING: f64 = 1.5;
/// Working-copy bytes per parameter.
const PARAM_RESIDENT: f64 = 2.0;
/// Shardable bytes per parameter (grad + Adam moments).
const PARAM_STATE: f64 = 10.0;

/// Bytes for one component.
#[derive(Clone, Copy, Debug, Default)]
pub struct Component {
    pub params: f64,
    pub acts: f64,
}

impl Component {
    pub fn total(&self) -> f64 {
        self.params + self.acts
    }
}

/// Per-GPU memory breakdown for one strategy.
#[derive(Clone, Copy, Debug)]
pub struct MemBreakdown {
    pub tok: Component,
    pub agg: Component,
    pub vit: Component,
    /// Usable HBM per GPU.
    pub cap: f64,
}

impl MemBreakdown {
    pub fn total(&self) -> f64 {
        self.tok.total() + self.agg.total() + self.vit.total()
    }

    pub fn fits(&self) -> bool {
        self.total() <= self.cap
    }

    /// Fraction of usable HBM consumed.
    pub fn frac_of_cap(&self) -> f64 {
        self.total() / self.cap
    }

    /// Share of memory going to tokenization + aggregation (the paper's
    /// 50–90% claim at high channel counts).
    pub fn tok_agg_fraction(&self) -> f64 {
        (self.tok.total() + self.agg.total()) / self.total()
    }
}

/// Parameter count of one aggregation unit over `k` channels.
fn unit_params(kind: UnitKind, k: usize, d: f64) -> f64 {
    match kind {
        // Wq,Wk,Wv,Wo + LN affine + pool: 4D² + 3D.
        UnitKind::CrossAttention => 4.0 * d * d + 3.0 * d,
        // channel-mix weight [k, D] + bias.
        UnitKind::Linear => k as f64 * d + d,
    }
}

/// Forward activations of one aggregation unit over `k` channels, full
/// embedding width (partial modules are rank-local, not embedding-split),
/// batch factor excluded.
fn unit_acts(kind: UnitKind, k: usize, p: f64, d: f64, heads: f64) -> f64 {
    let k = k as f64;
    match kind {
        // ln+residual (2 full-width copies) + qkv/attn-out etc. (6 copies)
        // + C² scores and probs.
        UnitKind::CrossAttention => {
            (9.0 * k * p * d + 2.0 * heads * p * k * k) * ACT
        }
        // one output token per position.
        UnitKind::Linear => p * d * ACT,
    }
}

/// First-level group sizes of a tree over `channels`.
fn tree_groups(tree: &TreeConfig, channels: usize) -> Vec<usize> {
    let g = tree.level1_units(channels);
    let base = channels / g;
    let extra = channels % g;
    (0..g).map(|i| base + usize::from(i < extra)).collect()
}

/// The analytical memory model over a machine spec.
#[derive(Clone, Copy, Debug)]
pub struct MemoryModel {
    pub machine: MachineSpec,
}

impl MemoryModel {
    pub fn frontier() -> Self {
        MemoryModel {
            machine: MachineSpec::frontier(),
        }
    }

    fn param_bytes(&self, numel: f64, fsdp: usize) -> f64 {
        numel * (PARAM_RESIDENT + PARAM_STATE / fsdp as f64)
    }

    /// Per-GPU breakdown of `cfg` under `strat`.
    pub fn breakdown(&self, cfg: &ModelConfig, strat: &Strategy) -> MemBreakdown {
        let d = cfg.embed_dim as f64;
        let p = cfg.num_patches() as f64;
        let pp = (cfg.patch * cfg.patch) as f64;
        let c = cfg.channels as f64;
        let heads = cfg.heads as f64;
        let layers = cfg.depth as f64;
        let m = cfg.mlp_dim() as f64;
        let tp = strat.tp as f64;
        let b = strat.micro_batch as f64;
        let fsdp = strat.fsdp;

        // ----- tokenization ---------------------------------------------
        let c_tok_local = match strat.plan {
            ChannelPlan::Replicated => c,
            ChannelPlan::DistTokenOnly | ChannelPlan::DChag(_) => c / tp,
        };
        let tok = Component {
            // per channel: conv p²·D + bias D + channel-ID embed D
            params: self.param_bytes(c_tok_local * (pp * d + 2.0 * d), fsdp),
            // patches + token outputs
            acts: b * c_tok_local * p * (pp + d) * ACT,
        };

        // ----- channel aggregation --------------------------------------
        // flat cross-attention over `cin` channels, embedding split by `te`
        let flat_params = |te: f64| 4.0 * d * d / te + 3.0 * d;
        let flat_acts = |cin: f64, te: f64| {
            b * (3.0 * cin * p * d            // LN in/out + residual, full width
                + 6.0 * cin * p * d / te      // qkv, attn-out, pooling streams
                + 2.0 * (heads / te) * p * cin * cin // scores + probs (no flash)
                + cin * p)
                * ACT
        };
        let agg = match strat.plan {
            ChannelPlan::Replicated => Component {
                params: self.param_bytes(flat_params(tp), fsdp),
                acts: flat_acts(c, tp),
            },
            ChannelPlan::DistTokenOnly => Component {
                params: self.param_bytes(flat_params(tp), fsdp),
                // gathered full token tensor (output + collective staging
                // workspace: ×2) + the same flat aggregation — this is what
                // "effectively negates" the tokenization savings (Fig. 8)
                acts: GATHER_STAGING * b * c * p * d * ACT + flat_acts(c, tp),
            },
            ChannelPlan::DChag(tree) => {
                let local = (c / tp) as usize;
                let groups = tree_groups(&tree, local);
                let mut params = 0.0;
                let mut acts = 0.0;
                for &k in &groups {
                    params += unit_params(tree.unit, k, d);
                    acts += b * unit_acts(tree.unit, k, p, d, heads);
                }
                if groups.len() > 1 {
                    params += unit_params(tree.unit, groups.len(), d);
                    acts += b * unit_acts(tree.unit, groups.len(), p, d, heads);
                }
                // one-token-per-rank gather buffer + final shared layer
                acts += GATHER_STAGING * b * tp * p * d * ACT;
                params += flat_params(tp);
                acts += flat_acts(tp, tp);
                Component {
                    params: self.param_bytes(params, fsdp),
                    acts,
                }
            }
        };

        // ----- transformer (ViT) blocks ----------------------------------
        let vit = Component {
            // 12D² matrices split by TP, LN + biases replicated; pos embed.
            params: self.param_bytes(layers * (12.0 * d * d / tp + 6.0 * d) + p * d, fsdp),
            // FA2: linear in P. Full-width LN/residual streams + sharded
            // qkv/mlp streams.
            acts: layers * b * p * (3.0 * d + (5.0 * d + 2.0 * m) / tp) * ACT,
        };

        MemBreakdown {
            tok,
            agg,
            vit,
            cap: self.machine.mem_cap(),
        }
    }

    /// Whether the strategy fits in HBM.
    pub fn fits(&self, cfg: &ModelConfig, strat: &Strategy) -> bool {
        self.breakdown(cfg, strat).fits()
    }

    /// Largest micro-batch that fits (activations scale linearly in B).
    /// Returns 0 when even the parameters do not fit.
    pub fn max_micro_batch(&self, cfg: &ModelConfig, strat: &Strategy) -> usize {
        let probe = strat.with_batch(1);
        let bd = self.breakdown(cfg, &probe);
        let fixed = bd.tok.params + bd.agg.params + bd.vit.params;
        let per_b = bd.tok.acts + bd.agg.acts + bd.vit.acts;
        if fixed > bd.cap {
            return 0;
        }
        ((bd.cap - fixed) / per_b).floor() as usize
    }

    /// Smallest power-of-two TP degree (≤ `max_tp`) at which the model fits,
    /// or None. Respects the head-divisibility constraint.
    pub fn min_tp(
        &self,
        cfg: &ModelConfig,
        plan: ChannelPlan,
        micro_batch: usize,
        max_tp: usize,
    ) -> Option<usize> {
        let mut tp = 1;
        while tp <= max_tp && cfg.heads.is_multiple_of(tp) {
            let strat = Strategy {
                plan,
                tp,
                fsdp: 1,
                dp: 1,
                micro_batch,
            };
            let divisible = cfg.channels.is_multiple_of(tp);
            if divisible && self.fits(cfg, &strat) {
                return Some(tp);
            }
            tp *= 2;
        }
        None
    }

    /// Memory *gain* of `candidate` over `baseline` in the paper's framing:
    /// `mem_baseline / mem_candidate − 1` (e.g. +0.70 = "70% improvement").
    pub fn gain_over(&self, cfg: &ModelConfig, baseline: &Strategy, candidate: &Strategy) -> f64 {
        let b = self.breakdown(cfg, baseline).total();
        let c = self.breakdown(cfg, candidate).total();
        b / c - 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(preset: ModelConfig, channels: usize) -> ModelConfig {
        preset.with_channels(channels)
    }

    #[test]
    fn memory_monotone_in_channels_and_batch() {
        let m = MemoryModel::frontier();
        let s = Strategy::tp(2, 4);
        let a = m.breakdown(&model(ModelConfig::p1_7b(), 128), &s).total();
        let b = m.breakdown(&model(ModelConfig::p1_7b(), 256), &s).total();
        assert!(b > a);
        let c = m
            .breakdown(&model(ModelConfig::p1_7b(), 128), &s.with_batch(8))
            .total();
        assert!(c > a);
    }

    #[test]
    fn tp_reduces_vit_not_tokenization() {
        let m = MemoryModel::frontier();
        let cfg = model(ModelConfig::p1_7b(), 512);
        let t1 = m.breakdown(&cfg, &Strategy::tp(1, 4));
        let t4 = m.breakdown(&cfg, &Strategy::tp(4, 4));
        assert!(t4.vit.total() < t1.vit.total() / 2.0);
        assert_eq!(t4.tok.total(), t1.tok.total(), "TP never touches tokenization");
    }

    #[test]
    fn dchag_reduces_tok_and_agg() {
        let m = MemoryModel::frontier();
        let cfg = model(ModelConfig::p1_7b(), 512);
        let tp = m.breakdown(&cfg, &Strategy::tp(8, 4));
        let dc = m.breakdown(
            &cfg,
            &Strategy::dchag(TreeConfig::tree0(UnitKind::Linear), 8, 4),
        );
        assert!(dc.tok.total() < tp.tok.total() / 4.0);
        assert!(dc.agg.total() < tp.agg.total() / 4.0);
        assert!((dc.vit.total() - tp.vit.total()).abs() < 1.0, "ViT unchanged");
    }

    #[test]
    fn dist_token_alone_gives_memory_back_to_agg() {
        // Fig. 8: tokenization shrinks but the gathered buffer makes the
        // aggregation module *bigger* than TP alone.
        let m = MemoryModel::frontier();
        let cfg = model(ModelConfig::p1_7b(), 1024);
        let tp = m.breakdown(&cfg, &Strategy::tp(8, 8));
        let dt = m.breakdown(&cfg, &Strategy::dist_token(8, 8));
        assert!(dt.tok.total() < tp.tok.total() / 4.0, "tokenization shrinks");
        assert!(dt.agg.total() > tp.agg.total(), "aggregation grows");
    }

    #[test]
    fn fsdp_param_floor_is_working_copy() {
        // Even infinite sharding leaves the bf16 working copy resident:
        // a 26B model can never fit on one Frontier node (paper §6.1).
        let m = MemoryModel::frontier();
        let cfg = model(ModelConfig::p26b(), 64);
        let s = Strategy::fsdp(8, 1);
        let bd = m.breakdown(&cfg, &s);
        assert!(
            !bd.fits(),
            "26B on a single node must OOM (got {:.1} GB)",
            bd.total() / 1e9
        );
    }

    #[test]
    fn gain_definition_matches_convention() {
        let m = MemoryModel::frontier();
        let cfg = model(ModelConfig::p7b(), 512);
        let base = Strategy::tp(16, 2);
        let cand = Strategy::dchag(TreeConfig::tree0(UnitKind::Linear), 16, 2);
        let gain = m.gain_over(&cfg, &base, &cand);
        assert!(gain > 0.0, "D-CHAG must reduce memory here");
        let b = m.breakdown(&cfg, &base).total();
        let c = m.breakdown(&cfg, &cand).total();
        assert!((gain - (b / c - 1.0)).abs() < 1e-12);
    }

    #[test]
    fn max_micro_batch_boundary_exact() {
        let m = MemoryModel::frontier();
        let cfg = model(ModelConfig::p1_7b(), 256);
        let s = Strategy::tp(2, 1);
        let bmax = m.max_micro_batch(&cfg, &s);
        assert!(bmax >= 1);
        assert!(m.fits(&cfg, &s.with_batch(bmax)));
        assert!(!m.fits(&cfg, &s.with_batch(bmax + 1)));
    }

    #[test]
    fn deeper_c_trees_cost_params_linear_trees_do_not() {
        let m = MemoryModel::frontier();
        let cfg = model(ModelConfig::p1_7b(), 512);
        let t0c = m
            .breakdown(
                &cfg,
                &Strategy::dchag(TreeConfig::tree0(UnitKind::CrossAttention), 2, 8),
            )
            .agg
            .params;
        let t8c = m
            .breakdown(
                &cfg,
                &Strategy::dchag(TreeConfig::tree(8, UnitKind::CrossAttention), 2, 8),
            )
            .agg
            .params;
        assert!(t8c > 2.0 * t0c, "8 extra cross-attention units add params");
        let t0l = m
            .breakdown(
                &cfg,
                &Strategy::dchag(TreeConfig::tree0(UnitKind::Linear), 2, 8),
            )
            .agg
            .params;
        let t8l = m
            .breakdown(
                &cfg,
                &Strategy::dchag(TreeConfig::tree(8, UnitKind::Linear), 2, 8),
            )
            .agg
            .params;
        assert!(t8l < 1.5 * t0l, "linear units stay cheap");
    }
}
