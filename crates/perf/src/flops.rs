//! Per-GPU FLOP model (forward + backward ≈ 3× forward for matmuls).

use dchag_model::config::{ModelConfig, UnitKind};

use crate::strategy::{ChannelPlan, Strategy};

/// Forward+backward multiplier.
const FB: f64 = 3.0;

/// FLOPs per GPU per step, split by the paper's three components.
#[derive(Clone, Copy, Debug, Default)]
pub struct FlopsBreakdown {
    pub tok: f64,
    pub agg: f64,
    pub vit: f64,
}

impl FlopsBreakdown {
    pub fn total(&self) -> f64 {
        self.tok + self.agg + self.vit
    }
}

/// Per-GPU training FLOPs for one micro-batch step.
pub fn flops_per_gpu(cfg: &ModelConfig, strat: &Strategy) -> FlopsBreakdown {
    let d = cfg.embed_dim as f64;
    let p = cfg.num_patches() as f64;
    let pp = (cfg.patch * cfg.patch) as f64;
    let c = cfg.channels as f64;
    let layers = cfg.depth as f64;
    let m = cfg.mlp_dim() as f64;
    let tp = strat.tp as f64;
    let b = strat.micro_batch as f64;

    let c_local = match strat.plan {
        ChannelPlan::Replicated => c,
        ChannelPlan::DistTokenOnly | ChannelPlan::DChag(_) => c / tp,
    };
    let tok = FB * 2.0 * b * c_local * p * pp * d;

    // flat cross-attention over `cin` channels, embedding split `te`
    let flat = |cin: f64, te: f64| {
        FB * b * p * (4.0 * 2.0 * cin * d * d / te + 2.0 * 2.0 * cin * cin * d / te)
    };
    let agg = match strat.plan {
        ChannelPlan::Replicated | ChannelPlan::DistTokenOnly => flat(c, tp),
        ChannelPlan::DChag(tree) => {
            let local = (c / tp) as usize;
            let groups = {
                let g = tree.level1_units(local);
                let base = local / g;
                let extra = local % g;
                (0..g)
                    .map(|i| base + usize::from(i < extra))
                    .collect::<Vec<_>>()
            };
            let unit = |k: f64| match tree.unit {
                UnitKind::CrossAttention => {
                    FB * b * p * (8.0 * k * d * d + 4.0 * k * k * d)
                }
                UnitKind::Linear => FB * b * p * 2.0 * k * d,
            };
            let mut f: f64 = groups.iter().map(|&k| unit(k as f64)).sum();
            if groups.len() > 1 {
                f += unit(groups.len() as f64);
            }
            f + flat(tp, tp)
        }
    };

    // transformer blocks: the 12D² projection/MLP matmuls (2·12·D²/tp MACs
    // per token; MLP width m = 4D is folded into the 12D²) plus the two
    // attention bmms (4·P·D/tp per token).
    let _ = m;
    let vit = FB * layers * b * p * (2.0 * 12.0 * d * d / tp + 4.0 * p * d / tp);

    FlopsBreakdown { tok, agg, vit }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dchag_model::config::TreeConfig;

    #[test]
    fn tokenization_flops_grow_with_channels() {
        let cfg = ModelConfig::p100m();
        let a = flops_per_gpu(&cfg.clone().with_channels(128), &Strategy::tp(1, 1));
        let b = flops_per_gpu(&cfg.with_channels(512), &Strategy::tp(1, 1));
        assert!(b.tok > 3.9 * a.tok);
        assert!((b.vit - a.vit).abs() < 1e-6, "ViT flops independent of C");
    }

    #[test]
    fn aggregation_flops_quadratic_in_channels() {
        let cfg = ModelConfig::p100m();
        let a = flops_per_gpu(&cfg.clone().with_channels(128), &Strategy::tp(1, 1));
        let b = flops_per_gpu(&cfg.with_channels(512), &Strategy::tp(1, 1));
        // quadratic term should push ratio well past linear
        assert!(b.agg / a.agg > 4.0);
    }

    #[test]
    fn dchag_cuts_per_gpu_tok_agg_flops() {
        let cfg = ModelConfig::p7b().with_channels(512);
        let tp = flops_per_gpu(&cfg, &Strategy::tp(8, 1));
        let dc = flops_per_gpu(
            &cfg,
            &Strategy::dchag(TreeConfig::tree0(UnitKind::Linear), 8, 1),
        );
        assert!(dc.tok < tp.tok / 4.0);
        assert!(dc.agg < tp.agg);
        assert!((dc.vit - tp.vit).abs() / tp.vit < 1e-9);
    }

    #[test]
    fn flops_scale_linearly_with_batch() {
        let cfg = ModelConfig::p1b().with_channels(256);
        let f1 = flops_per_gpu(&cfg, &Strategy::tp(2, 1)).total();
        let f4 = flops_per_gpu(&cfg, &Strategy::tp(2, 4)).total();
        assert!((f4 / f1 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn paper_observation_compute_shifts_to_channels() {
        // Fig. 6 bottom: as channels grow, tokenization+aggregation dominate
        // the FLOPs even for the 3B model.
        let cfg = ModelConfig::p3b().with_channels(512);
        let f = flops_per_gpu(&cfg, &Strategy::tp(1, 1));
        assert!(f.tok + f.agg > f.vit * 0.3, "channel work is significant");
    }
}
